package baseline

import (
	"strings"
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
)

func TestCliqueFindsPlantedClusters(t *testing.T) {
	// Two tight blobs far apart in 2D: CLIQUE must report at least
	// one 2-dimensional subspace cluster per blob region.
	n := 1000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x[i], y[i] = 10+float64(i%7), 10+float64(i%5)
		} else {
			x[i], y[i] = 80+float64(i%7), 80+float64(i%5)
		}
	}
	tab := engine.MustNewTable("blobs",
		engine.NewFloatColumn("x", x), engine.NewFloatColumn("y", y))
	res, err := Clique(tab, tab.All(), []string{"x", "y"}, CliqueConfig{Xi: 10, Tau: 0.05, MaxDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	var twoDim []CliqueCluster
	for _, c := range res.Clusters {
		if len(c.Subspace) == 2 {
			twoDim = append(twoDim, c)
		}
	}
	if len(twoDim) < 2 {
		t.Fatalf("found %d 2-dim clusters, want ≥ 2 (one per blob)", len(twoDim))
	}
	covered := 0
	for _, c := range twoDim {
		covered += c.Coverage
	}
	if covered < n*9/10 {
		t.Fatalf("2-dim clusters cover %d of %d rows", covered, n)
	}
}

func TestCliqueDNFRendering(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i % 10)
	}
	tab := engine.MustNewTable("t", engine.NewFloatColumn("x", x))
	res, err := Clique(tab, tab.All(), []string{"x"}, CliqueConfig{Xi: 5, Tau: 0.1, MaxDims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	dnf := res.DNF(0)
	if !strings.Contains(dnf, "<=x<") {
		t.Fatalf("DNF = %q", dnf)
	}
}

func TestCliqueNominalDimensions(t *testing.T) {
	tab := dataset.VOC(2000, 3)
	res, err := Clique(tab, tab.All(), []string{"type_of_boat", "tonnage"}, DefaultCliqueConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Dense (type, tonnage-bin) units must exist: types concentrate
	// their tonnage.
	found := false
	for _, c := range res.Clusters {
		if len(c.Subspace) == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no 2-dim cluster over a nominal+numeric subspace")
	}
}

func TestCliqueAdjacencyMergesNeighbors(t *testing.T) {
	// A uniform stripe across bins 0..4 of x must merge into ONE
	// cluster (connected dense units), not five.
	x := make([]float64, 500)
	for i := range x {
		x[i] = float64(i) / 100 // uniform over [0,5)
	}
	tab := engine.MustNewTable("t", engine.NewFloatColumn("x", x))
	res, err := Clique(tab, tab.All(), []string{"x"}, CliqueConfig{Xi: 5, Tau: 0.1, MaxDims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 merged stripe", len(res.Clusters))
	}
	if res.Clusters[0].Coverage != 500 {
		t.Fatalf("coverage = %d", res.Clusters[0].Coverage)
	}
	if len(res.Clusters[0].Units) != 5 {
		t.Fatalf("units = %d, want 5", len(res.Clusters[0].Units))
	}
}

func TestCliqueEmptySelection(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewFloatColumn("x", []float64{1}))
	if _, err := Clique(tab, engine.Selection{}, []string{"x"}, DefaultCliqueConfig()); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestCliqueUnknownColumn(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewFloatColumn("x", []float64{1, 2}))
	if _, err := Clique(tab, tab.All(), []string{"ghost"}, DefaultCliqueConfig()); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestCliqueConfigDefaults(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewFloatColumn("x", []float64{1, 2, 3, 4}))
	// Zero config normalizes to defaults instead of dividing by zero.
	if _, err := Clique(tab, tab.All(), []string{"x"}, CliqueConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueDeterministic(t *testing.T) {
	tab := dataset.GaussianMixture(1500, 2, 3, 7)
	run := func() int {
		res, err := Clique(tab, tab.All(), []string{"x0", "x1"}, DefaultCliqueConfig())
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Clusters)*1000 + res.DenseUnitCount
	}
	if run() != run() {
		t.Fatal("CLIQUE output not deterministic")
	}
}
