package baseline

import (
	"fmt"
	"sort"
	"strings"

	"charles/internal/engine"
)

// CliqueConfig parameterizes the miniature CLIQUE implementation.
type CliqueConfig struct {
	// Xi is the number of equal-width bins per numeric dimension
	// (the ξ grid resolution of the original paper). Nominal
	// dimensions use one bin per value capped at Xi by frequency.
	Xi int
	// Tau is the density threshold as a fraction of the row count: a
	// unit is dense when it holds at least Tau·N rows.
	Tau float64
	// MaxDims bounds the subspace dimensionality explored.
	MaxDims int
}

// DefaultCliqueConfig mirrors common CLIQUE settings: a 10-bin grid
// with a 1% density threshold up to 3-dimensional subspaces.
func DefaultCliqueConfig() CliqueConfig {
	return CliqueConfig{Xi: 10, Tau: 0.01, MaxDims: 3}
}

// CliqueUnit is one dense grid cell: a bin index per dimension of
// its subspace.
type CliqueUnit struct {
	// Bins maps attribute name to bin index.
	Bins map[string]int
	// Count is the number of rows inside the unit.
	Count int
}

// CliqueCluster is a maximal set of connected dense units in one
// subspace, reported with its total coverage. Expressed in DNF it is
// the union of its units' hyper-rectangles — the output format
// Section 6.4 compares with SDL partitions.
type CliqueCluster struct {
	// Subspace lists the dimensions, sorted.
	Subspace []string
	// Units are the connected dense cells.
	Units []CliqueUnit
	// Coverage is the number of rows in the cluster.
	Coverage int
}

// DNF renders the cluster as the disjunction of per-unit
// conjunctions over bin ranges, e.g.
// ((30<=age<50) ∧ (5<=salary<8)) ∨ (...).
func (c *CliqueCluster) DNF(g *cliqueGrid) string {
	terms := make([]string, 0, len(c.Units))
	for _, u := range c.Units {
		conj := make([]string, 0, len(c.Subspace))
		for _, dim := range c.Subspace {
			conj = append(conj, g.binPredicate(dim, u.Bins[dim]))
		}
		terms = append(terms, "("+strings.Join(conj, " ∧ ")+")")
	}
	return strings.Join(terms, " ∨ ")
}

// CliqueResult bundles the clusters with the grid used to express
// them.
type CliqueResult struct {
	Clusters []CliqueCluster
	grid     *cliqueGrid
	// DenseUnitCount is the total number of dense units found across
	// all subspaces (the search-space size driver).
	DenseUnitCount int
}

// DNF renders one cluster of the result.
func (r *CliqueResult) DNF(i int) string { return r.Clusters[i].DNF(r.grid) }

// cliqueGrid precomputes each row's bin per dimension.
type cliqueGrid struct {
	attrs   []string
	kind    map[string]engine.Kind
	bins    map[string][]int // per attr: bin id per selected row position
	numBins map[string]int   // per attr: bin count
	binLo   map[string][]float64
	binHi   map[string][]float64
	binName map[string][]string // nominal bin labels
	n       int
}

func (g *cliqueGrid) binPredicate(attr string, bin int) string {
	if names, ok := g.binName[attr]; ok && names != nil {
		return fmt.Sprintf("%s=%s", attr, names[bin])
	}
	return fmt.Sprintf("%.4g<=%s<%.4g", g.binLo[attr][bin], attr, g.binHi[attr][bin])
}

// Clique runs the bottom-up grid-density subspace clustering of
// Agrawal et al. (SIGMOD 1998) on the selected rows of the table,
// restricted to attrs: find dense 1-dimensional units, join dense
// (k−1)-dimensional units Apriori-style into k-dimensional
// candidates, keep the dense ones, and report connected components
// per subspace as clusters.
func Clique(tab *engine.Table, sel engine.Selection, attrs []string, cfg CliqueConfig) (*CliqueResult, error) {
	if cfg.Xi < 2 {
		cfg.Xi = 10
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 0.01
	}
	if cfg.MaxDims < 1 {
		cfg.MaxDims = 3
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("baseline: clique on empty selection")
	}
	g, err := buildGrid(tab, sel, attrs, cfg.Xi)
	if err != nil {
		return nil, err
	}
	minCount := int(cfg.Tau * float64(len(sel)))
	if minCount < 1 {
		minCount = 1
	}
	// Level 1: dense 1-dim units.
	level := map[string]*CliqueUnit{}
	for _, attr := range g.attrs {
		counts := make([]int, g.numBins[attr])
		for _, b := range g.bins[attr] {
			counts[b]++
		}
		for b, c := range counts {
			if c >= minCount {
				u := &CliqueUnit{Bins: map[string]int{attr: b}, Count: c}
				level[unitID(u)] = u
			}
		}
	}
	result := &CliqueResult{grid: g}
	allDense := map[int][]*CliqueUnit{1: unitList(level)}
	result.DenseUnitCount = len(level)
	// Levels 2..MaxDims: Apriori joins.
	for k := 2; k <= cfg.MaxDims && len(level) > 1; k++ {
		candidates := map[string]*CliqueUnit{}
		units := unitList(level)
		for i := 0; i < len(units); i++ {
			for j := i + 1; j < len(units); j++ {
				joined, ok := joinUnits(units[i], units[j])
				if !ok {
					continue
				}
				candidates[unitID(joined)] = joined
			}
		}
		next := map[string]*CliqueUnit{}
		for key, u := range candidates {
			c := g.countUnit(u)
			if c >= minCount {
				u.Count = c
				next[key] = u
			}
		}
		if len(next) == 0 {
			break
		}
		level = next
		allDense[k] = unitList(level)
		result.DenseUnitCount += len(level)
	}
	// Clusters: connected components per subspace, deepest first.
	for k := cfg.MaxDims; k >= 1; k-- {
		units := allDense[k]
		if len(units) == 0 {
			continue
		}
		bySubspace := map[string][]*CliqueUnit{}
		for _, u := range units {
			bySubspace[subspaceID(u)] = append(bySubspace[subspaceID(u)], u)
		}
		subspaces := make([]string, 0, len(bySubspace))
		for s := range bySubspace {
			subspaces = append(subspaces, s)
		}
		sort.Strings(subspaces)
		for _, s := range subspaces {
			result.Clusters = append(result.Clusters, connectedComponents(g, bySubspace[s])...)
		}
	}
	return result, nil
}

func buildGrid(tab *engine.Table, sel engine.Selection, attrs []string, xi int) (*cliqueGrid, error) {
	g := &cliqueGrid{
		kind:    map[string]engine.Kind{},
		bins:    map[string][]int{},
		numBins: map[string]int{},
		binLo:   map[string][]float64{},
		binHi:   map[string][]float64{},
		binName: map[string][]string{},
		n:       len(sel),
	}
	for _, attr := range attrs {
		col, ok := tab.ColumnByName(attr)
		if !ok {
			return nil, fmt.Errorf("baseline: no column %q", attr)
		}
		g.attrs = append(g.attrs, attr)
		g.kind[attr] = col.Kind()
		switch col := col.(type) {
		case *engine.StringColumn:
			binOf := map[string]int{}
			vcs := engine.StringValueCounts(col, sel)
			sort.Slice(vcs, func(i, j int) bool {
				if vcs[i].Count != vcs[j].Count {
					return vcs[i].Count > vcs[j].Count
				}
				return vcs[i].Value < vcs[j].Value
			})
			var names []string
			for i, vc := range vcs {
				if i < xi-1 || len(vcs) <= xi {
					binOf[vc.Value] = len(names)
					names = append(names, vc.Value)
				}
			}
			other := -1
			if len(vcs) > xi {
				other = len(names)
				names = append(names, "<other>")
			}
			bins := make([]int, len(sel))
			for i, row := range sel {
				if b, ok := binOf[col.Str(int(row))]; ok {
					bins[i] = b
				} else {
					bins[i] = other
				}
			}
			g.bins[attr] = bins
			g.numBins[attr] = len(names)
			g.binName[attr] = names
		case *engine.BoolColumn:
			bins := make([]int, len(sel))
			for i, row := range sel {
				if col.Bool(int(row)) {
					bins[i] = 1
				}
			}
			g.bins[attr] = bins
			g.numBins[attr] = 2
			g.binName[attr] = []string{"false", "true"}
		default:
			vals := make([]float64, len(sel))
			switch col := col.(type) {
			case *engine.FloatColumn:
				for i, row := range sel {
					vals[i] = col.Float64(int(row))
				}
			case engine.IntValued:
				for i, row := range sel {
					vals[i] = float64(col.Int64(int(row)))
				}
			default:
				return nil, fmt.Errorf("baseline: cannot grid column %q", attr)
			}
			min, max := vals[0], vals[0]
			for _, v := range vals {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			w := (max - min) / float64(xi)
			if w == 0 {
				w = 1
			}
			bins := make([]int, len(sel))
			lo := make([]float64, xi)
			hi := make([]float64, xi)
			for b := 0; b < xi; b++ {
				lo[b] = min + float64(b)*w
				hi[b] = min + float64(b+1)*w
			}
			for i, v := range vals {
				b := int((v - min) / w)
				if b >= xi {
					b = xi - 1
				}
				bins[i] = b
			}
			g.bins[attr] = bins
			g.numBins[attr] = xi
			g.binLo[attr] = lo
			g.binHi[attr] = hi
		}
	}
	return g, nil
}

func (g *cliqueGrid) countUnit(u *CliqueUnit) int {
	count := 0
	for i := 0; i < g.n; i++ {
		match := true
		for attr, b := range u.Bins {
			if g.bins[attr][i] != b {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	return count
}

func unitID(u *CliqueUnit) string {
	keys := make([]string, 0, len(u.Bins))
	for k := range u.Bins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, u.Bins[k])
	}
	return b.String()
}

func subspaceID(u *CliqueUnit) string {
	keys := make([]string, 0, len(u.Bins))
	for k := range u.Bins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func unitList(m map[string]*CliqueUnit) []*CliqueUnit {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*CliqueUnit, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// joinUnits merges two (k−1)-dim units sharing k−2 dimensions with
// equal bins into one k-dim candidate (the Apriori join).
func joinUnits(a, b *CliqueUnit) (*CliqueUnit, bool) {
	if len(a.Bins) != len(b.Bins) {
		return nil, false
	}
	diff := 0
	merged := make(map[string]int, len(a.Bins)+1)
	for k, v := range a.Bins {
		merged[k] = v
	}
	for k, v := range b.Bins {
		if av, ok := a.Bins[k]; ok {
			if av != v {
				return nil, false // same dim, different bin
			}
			continue
		}
		diff++
		merged[k] = v
	}
	for k := range a.Bins {
		if _, ok := b.Bins[k]; !ok {
			diff++ // a-only dims count toward the reverse diff
		}
	}
	if diff != 2 { // exactly one new dim from each side
		return nil, false
	}
	return &CliqueUnit{Bins: merged}, true
}

// connectedComponents groups units of one subspace into clusters:
// two units are adjacent when they differ by exactly one bin step in
// exactly one numeric dimension (nominal bins must match).
func connectedComponents(g *cliqueGrid, units []*CliqueUnit) []CliqueCluster {
	n := len(units)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if adjacentUnits(g, units[i], units[j]) {
				union(i, j)
			}
		}
	}
	groups := map[int][]*CliqueUnit{}
	for i, u := range units {
		groups[find(i)] = append(groups[find(i)], u)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []CliqueCluster
	for _, r := range roots {
		us := groups[r]
		var subspace []string
		for k := range us[0].Bins {
			subspace = append(subspace, k)
		}
		sort.Strings(subspace)
		cluster := CliqueCluster{Subspace: subspace}
		for _, u := range us {
			cluster.Units = append(cluster.Units, *u)
			cluster.Coverage += u.Count
		}
		out = append(out, cluster)
	}
	return out
}

func adjacentUnits(g *cliqueGrid, a, b *CliqueUnit) bool {
	diffs := 0
	for attr, av := range a.Bins {
		bv := b.Bins[attr]
		if av == bv {
			continue
		}
		// Nominal bins have no order: never adjacent.
		if g.binName[attr] != nil {
			return false
		}
		if av-bv == 1 || bv-av == 1 {
			diffs++
			if diffs > 1 {
				return false
			}
			continue
		}
		return false
	}
	return diffs == 1
}
