package baseline

import (
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func TestFacetsPartitionAndBreadthOne(t *testing.T) {
	tab := dataset.VOC(2000, 1)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
	if err != nil {
		t.Fatal(err)
	}
	facets, err := Facets(ev, ctx, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) != 3 {
		t.Fatalf("facets = %d, want 3", len(facets))
	}
	for _, f := range facets {
		if err := seg.ValidatePartition(ev, ctx, f); err != nil {
			t.Fatalf("%v: %v", f.CutAttrs, err)
		}
		// "As in most faceted search applications, all the facets are
		// based on one attribute only."
		if f.Breadth() != 1 {
			t.Fatalf("facet on %v has breadth %d", f.CutAttrs, f.Breadth())
		}
		if f.Depth() > 6 {
			t.Fatalf("facet on %v has %d groups, want ≤ 6", f.CutAttrs, f.Depth())
		}
	}
}

func TestFacetsNominalOtherBucket(t *testing.T) {
	tab := dataset.VOC(2000, 2)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "master") // high-cardinality nominal
	if err != nil {
		t.Fatal(err)
	}
	facets, err := Facets(ev, ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) != 1 {
		t.Fatalf("facets = %d", len(facets))
	}
	f := facets[0]
	if f.Depth() != 5 {
		t.Fatalf("groups = %d, want 5 (4 values + other)", f.Depth())
	}
	// The last group pools the tail: it must contain many values.
	last, _ := f.Queries[f.Depth()-1].Constraint("master")
	if len(last.Set) < 10 {
		t.Fatalf("other bucket has %d values", len(last.Set))
	}
	if err := seg.ValidatePartition(ev, ctx, f); err != nil {
		t.Fatal(err)
	}
}

func TestFacetsSkipsConstantColumns(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", []int64{1, 2, 3, 4}),
		engine.NewIntColumn("c", []int64{7, 7, 7, 7}),
		engine.NewFloatColumn("fc", []float64{1, 1, 1, 1}),
	)
	ev := seg.NewEvaluator(tab)
	facets, err := Facets(ev, sdl.ContextAll(tab), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) != 1 || facets[0].CutAttrs[0] != "v" {
		t.Fatalf("facets = %v", facets)
	}
}

func TestFacetsIntBinsCoverDomainExactly(t *testing.T) {
	vals := make([]int64, 103) // deliberately not divisible
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", vals))
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	facets, err := Facets(ev, ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.ValidatePartition(ev, ctx, facets[0]); err != nil {
		t.Fatal(err)
	}
	if facets[0].Depth() != 4 {
		t.Fatalf("bins = %d", facets[0].Depth())
	}
}

func TestFacetsNarrowIntDomain(t *testing.T) {
	// Domain narrower than the group count: one bin per value.
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{0, 1, 2, 0, 1, 2}))
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	facets, err := Facets(ev, ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if facets[0].Depth() != 3 {
		t.Fatalf("bins = %d, want 3", facets[0].Depth())
	}
	if err := seg.ValidatePartition(ev, ctx, facets[0]); err != nil {
		t.Fatal(err)
	}
}

func TestFacetsErrors(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{1, 2}))
	ev := seg.NewEvaluator(tab)
	ctx := sdl.MustQuery(sdl.ClosedRange("v", engine.Int(50), engine.Int(60)))
	if _, err := Facets(ev, ctx, 4); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestFacetsBoolAndFloat(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewBoolColumn("b", []bool{true, false, true, false}),
		engine.NewFloatColumn("f", []float64{0, 1, 2, 3}),
	)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	facets, err := Facets(ev, ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) != 2 {
		t.Fatalf("facets = %d", len(facets))
	}
	for _, f := range facets {
		if err := seg.ValidatePartition(ev, ctx, f); err != nil {
			t.Fatal(err)
		}
	}
}
