package baseline

import (
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func TestKMeansSeparatesPlantedClusters(t *testing.T) {
	tab := dataset.GaussianMixture(1000, 2, 3, 5)
	res, err := KMeans(tab, tab.All(), []string{"x0", "x1"}, 3, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 || len(res.Assignment) != 1000 {
		t.Fatalf("shape: %d centers, %d assignments", len(res.Centers), len(res.Assignment))
	}
	// Compare against ground truth: each k-means cluster should be
	// dominated by one true label (purity > 0.8 overall).
	label := tab.MustColumn("label").(*engine.StringColumn)
	counts := map[int]map[string]int{}
	for i, c := range res.Assignment {
		if counts[c] == nil {
			counts[c] = map[string]int{}
		}
		counts[c][label.Str(i)]++
	}
	pure, total := 0, 0
	for _, byLabel := range counts {
		best, sum := 0, 0
		for _, n := range byLabel {
			if n > best {
				best = n
			}
			sum += n
		}
		pure += best
		total += sum
	}
	if float64(pure)/float64(total) < 0.8 {
		t.Fatalf("purity = %v", float64(pure)/float64(total))
	}
}

func TestKMeansErrors(t *testing.T) {
	tab := dataset.GaussianMixture(10, 2, 2, 1)
	if _, err := KMeans(tab, tab.All(), []string{"x0"}, 0, 10, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(tab, tab.All(), []string{"x0"}, 20, 10, 1); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := KMeans(tab, tab.All(), []string{"label"}, 2, 10, 1); err == nil {
		t.Fatal("nominal column accepted")
	}
	if _, err := KMeans(tab, tab.All(), []string{"ghost"}, 2, 10, 1); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestKMeansDeterministicUnderSeed(t *testing.T) {
	tab := dataset.GaussianMixture(500, 2, 3, 2)
	a, err := KMeans(tab, tab.All(), []string{"x0", "x1"}, 3, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(tab, tab.All(), []string{"x0", "x1"}, 3, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.WithinSS != b.WithinSS {
		t.Fatalf("not deterministic: %v vs %v", a.WithinSS, b.WithinSS)
	}
}

func TestSegmentationHomogeneity(t *testing.T) {
	tab := dataset.GaussianMixture(2000, 2, 2, 3)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "x0", "x1", "label")
	if err != nil {
		t.Fatal(err)
	}
	// Splitting on the true label must give tighter segments than
	// the whole context (homogeneity well below 1).
	labelSeg, ok, err := seg.InitialCut(ev, ctx, "label", seg.DefaultCutOptions())
	if err != nil || !ok {
		t.Fatal(err)
	}
	h, err := SegmentationHomogeneity(ev, ctx, labelSeg, []string{"x0", "x1"})
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 || h >= 0.9 {
		t.Fatalf("label split homogeneity = %v, want well below 1", h)
	}
	// Non-float attrs are skipped; all-nominal attr list errors.
	if _, err := SegmentationHomogeneity(ev, ctx, labelSeg, []string{"label"}); err == nil {
		t.Fatal("all-nominal attr list accepted")
	}
}

func TestSegmentationHomogeneityRandomSplitNearOne(t *testing.T) {
	// A split on an unrelated uniform attribute should leave the
	// within-variance near the overall variance.
	tab := dataset.UniformInts(3000, 1, 1000, 9)
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = float64(i%97) / 7
	}
	tab2 := engine.MustNewTable("t",
		tab.Column(0),
		engine.NewFloatColumn("f", vals),
	)
	ev := seg.NewEvaluator(tab2)
	ctx := sdl.ContextAll(tab2)
	s, ok, err := seg.InitialCut(ev, ctx, "u0", seg.DefaultCutOptions())
	if err != nil || !ok {
		t.Fatal(err)
	}
	h, err := SegmentationHomogeneity(ev, ctx, s, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.9 || h > 1.1 {
		t.Fatalf("unrelated split homogeneity = %v, want ≈1", h)
	}
}
