// Package baseline implements the comparators Section 6 positions
// Charles against: single-attribute faceted counts (faceted search,
// §6.2), a miniature CLIQUE grid-density subspace clusterer (§6.4),
// and k-means as the homogeneity reference the paper's Section 3
// declines to optimize directly. The random-composition ablation
// lives in internal/core (PairRandom) and the decision-tree-shaped
// comparator is core.AdaptiveCuts.
package baseline

import (
	"fmt"

	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
	"charles/internal/stats"
)

// Facets produces one segmentation per context attribute the way a
// faceted-search interface would: nominal attributes get one segment
// per value (the most frequent maxGroups−1 values, with the tail
// pooled into an "other" set), numeric attributes get maxGroups
// equal-width bins. Unlike Charles, every facet is based on a single
// attribute — exactly the limitation Section 6.2 calls out — so the
// breadth metric of any facet is 1.
func Facets(ev *seg.Evaluator, context sdl.Query, maxGroups int) ([]*seg.Segmentation, error) {
	if maxGroups < 2 {
		maxGroups = 2
	}
	var out []*seg.Segmentation
	for _, attr := range context.Attrs() {
		s, err := facetOn(ev, context, attr, maxGroups)
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	return out, nil
}

func facetOn(ev *seg.Evaluator, context sdl.Query, attr string, maxGroups int) (*seg.Segmentation, error) {
	col, ok := ev.Table().ColumnByName(attr)
	if !ok {
		return nil, fmt.Errorf("baseline: no column %q", attr)
	}
	sel, err := ev.Select(context)
	if err != nil {
		return nil, err
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("baseline: context %s selects no rows", context)
	}
	var pieces []sdl.Constraint
	switch col := col.(type) {
	case *engine.StringColumn:
		pieces = nominalFacets(attr, engine.StringValueCounts(col, sel), maxGroups, func(s string) engine.Value {
			return engine.String_(s)
		})
	case *engine.BoolColumn:
		pieces = nominalFacets(attr, engine.BoolValueCounts(col, sel), maxGroups, func(s string) engine.Value {
			return engine.Bool(s == "true")
		})
	case *engine.FloatColumn:
		min, max, _ := engine.FloatMinMax(col, sel)
		if min == max {
			return nil, nil
		}
		w := (max - min) / float64(maxGroups)
		for i := 0; i < maxGroups; i++ {
			lo := min + float64(i)*w
			if i == maxGroups-1 {
				pieces = append(pieces, sdl.RangeC(attr, engine.Float(lo), engine.Float(max), true, true))
			} else {
				pieces = append(pieces, sdl.RangeC(attr, engine.Float(lo), engine.Float(lo+w), true, false))
			}
		}
	case engine.IntValued:
		min, max, _ := engine.IntMinMax(col, sel)
		if min == max {
			return nil, nil
		}
		mk := func(v int64) engine.Value {
			if col.Kind() == engine.KindDate {
				return engine.Date(v)
			}
			return engine.Int(v)
		}
		span := max - min + 1
		groups := maxGroups
		if int64(groups) > span {
			groups = int(span)
		}
		w := span / int64(groups)
		rem := span % int64(groups)
		lo := min
		for i := 0; i < groups; i++ {
			width := w
			if int64(i) < rem {
				width++
			}
			hi := lo + width
			if i == groups-1 {
				pieces = append(pieces, sdl.RangeC(attr, mk(lo), mk(max), true, true))
			} else {
				pieces = append(pieces, sdl.RangeC(attr, mk(lo), mk(hi), true, false))
			}
			lo = hi
		}
	default:
		return nil, fmt.Errorf("baseline: cannot facet column %q of kind %v", attr, col.Kind())
	}
	if len(pieces) < 2 {
		return nil, nil
	}
	out := &seg.Segmentation{CutAttrs: []string{attr}}
	for _, piece := range pieces {
		q := context.WithConstraint(piece)
		n, err := ev.Count(q)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		out.Queries = append(out.Queries, q)
		out.Counts = append(out.Counts, n)
	}
	if out.Depth() < 2 {
		return nil, nil
	}
	return out, nil
}

func nominalFacets(attr string, vcs []stats.ValueCount, maxGroups int, mk func(string) engine.Value) []sdl.Constraint {
	if len(vcs) < 2 {
		return nil
	}
	stats.OrderByFrequency(vcs)
	var pieces []sdl.Constraint
	if len(vcs) <= maxGroups {
		for _, vc := range vcs {
			pieces = append(pieces, sdl.SetC(attr, mk(vc.Value)))
		}
		return pieces
	}
	for _, vc := range vcs[:maxGroups-1] {
		pieces = append(pieces, sdl.SetC(attr, mk(vc.Value)))
	}
	tail := make([]engine.Value, 0, len(vcs)-maxGroups+1)
	for _, vc := range vcs[maxGroups-1:] {
		tail = append(tail, mk(vc.Value))
	}
	pieces = append(pieces, sdl.SetC(attr, tail...))
	return pieces
}
