package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

// KMeansResult holds a clustering of the selected rows over float
// attributes.
type KMeansResult struct {
	// Assignment maps each position in the input selection to a
	// cluster index.
	Assignment []int
	// Centers are the final centroids, one per cluster.
	Centers [][]float64
	// Iterations actually performed.
	Iterations int
	// WithinSS is the total within-cluster sum of squares.
	WithinSS float64
}

// KMeans is Lloyd's algorithm with deterministic seeding over the
// given float-valued attributes. It is the homogeneity reference of
// Section 3: k-means optimizes intra-cluster distance directly but
// its clusters are not expressible as SDL queries, which is the
// trade-off Charles makes.
func KMeans(tab *engine.Table, sel engine.Selection, attrs []string, k, maxIter int, seed int64) (*KMeansResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: kmeans needs k >= 1")
	}
	if len(sel) < k {
		return nil, fmt.Errorf("baseline: kmeans with %d rows and k=%d", len(sel), k)
	}
	points, err := gatherPoints(tab, sel, attrs)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// k-means++-style seeding: first center uniform, then farthest-
	// biased.
	centers := make([][]float64, 0, k)
	centers = append(centers, clonePoint(points[rng.Intn(len(points))]))
	for len(centers) < k {
		dists := make([]float64, len(points))
		total := 0.0
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centers {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			centers = append(centers, clonePoint(points[rng.Intn(len(points))]))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, clonePoint(points[idx]))
	}
	res := &KMeansResult{Assignment: make([]int, len(points)), Centers: centers}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, center := range centers {
				if d := sqDist(p, center); d < bestD {
					best, bestD = c, d
				}
			}
			if res.Assignment[i] != best {
				res.Assignment[i] = best
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, len(attrs))
		}
		for i, p := range points {
			c := res.Assignment[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue // keep the old center for empty clusters
			}
			for d := range centers[c] {
				centers[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	for i, p := range points {
		res.WithinSS += sqDist(p, centers[res.Assignment[i]])
	}
	return res, nil
}

func gatherPoints(tab *engine.Table, sel engine.Selection, attrs []string) ([][]float64, error) {
	cols := make([]engine.FloatValued, len(attrs))
	for i, attr := range attrs {
		col, ok := tab.ColumnByName(attr)
		if !ok {
			return nil, fmt.Errorf("baseline: no column %q", attr)
		}
		fc, ok := col.(engine.FloatValued)
		if !ok {
			return nil, fmt.Errorf("baseline: kmeans needs float columns, %q is %v", attr, col.Kind())
		}
		cols[i] = fc
	}
	points := make([][]float64, len(sel))
	for i, row := range sel {
		p := make([]float64, len(attrs))
		for d, col := range cols {
			p[d] = col.Float64(int(row))
		}
		points[i] = p
	}
	return points, nil
}

func clonePoint(p []float64) []float64 {
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SegmentationHomogeneity is the homogeneity proxy used in the E9
// comparison: the count-weighted mean within-segment variance of
// each float attribute, normalized by the attribute's overall
// variance in the context, averaged over attrs. 1 means the segments
// are no tighter than the whole context; values toward 0 mean
// homogeneous segments. Section 3 "purposely neglect[s] to quantify
// homogeneity" online — this measures offline what the heuristic
// achieved anyway.
func SegmentationHomogeneity(ev *seg.Evaluator, context sdl.Query, s *seg.Segmentation, attrs []string) (float64, error) {
	ctxSel, err := ev.Select(context)
	if err != nil {
		return 0, err
	}
	if len(ctxSel) == 0 {
		return 0, fmt.Errorf("baseline: empty context")
	}
	ratioSum, used := 0.0, 0
	for _, attr := range attrs {
		col, ok := ev.Table().ColumnByName(attr)
		if !ok {
			return 0, fmt.Errorf("baseline: no column %q", attr)
		}
		fc, ok := col.(engine.FloatValued)
		if !ok {
			continue // homogeneity proxy only over numeric attrs
		}
		_, overall, _ := engine.FloatMeanVar(fc, ctxSel)
		if overall == 0 {
			continue
		}
		within, total := 0.0, 0
		for i, q := range s.Queries {
			segSel, err := ev.Select(q)
			if err != nil {
				return 0, err
			}
			_, v, ok := engine.FloatMeanVar(fc, segSel)
			if !ok {
				continue
			}
			within += v * float64(s.Counts[i])
			total += s.Counts[i]
		}
		if total == 0 {
			continue
		}
		ratioSum += (within / float64(total)) / overall
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("baseline: no usable float attribute among %v", attrs)
	}
	return ratioSum / float64(used), nil
}
