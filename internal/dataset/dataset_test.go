package dataset

import (
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func TestVOCShape(t *testing.T) {
	tab := VOC(500, 1)
	if tab.NumRows() != 500 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	wantKinds := map[string]engine.Kind{
		"type_of_boat": engine.KindString, "tonnage": engine.KindInt,
		"built": engine.KindInt, "yard": engine.KindString,
		"departure_date": engine.KindDate, "departure_harbour": engine.KindString,
		"cape_arrival": engine.KindDate, "trip": engine.KindInt,
		"master": engine.KindString,
	}
	for name, kind := range wantKinds {
		c, ok := tab.ColumnByName(name)
		if !ok || c.Kind() != kind {
			t.Errorf("column %q: kind %v, want %v", name, c.Kind(), kind)
		}
	}
}

func TestVOCDeterministic(t *testing.T) {
	a, b := VOC(200, 42), VOC(200, 42)
	for c := 0; c < a.NumCols(); c++ {
		for r := 0; r < a.NumRows(); r++ {
			if !a.Column(c).Value(r).Equal(b.Column(c).Value(r)) {
				t.Fatalf("VOC not deterministic at (%d,%d)", r, c)
			}
		}
	}
	diff := VOC(200, 43)
	same := true
	for r := 0; r < 200 && same; r++ {
		if !a.Column(1).Value(r).Equal(diff.Column(1).Value(r)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical tonnage column")
	}
}

func TestVOCSemanticInvariants(t *testing.T) {
	tab := VOC(2000, 7)
	dep := tab.MustColumn("departure_date").(*engine.DateColumn)
	arr := tab.MustColumn("cape_arrival").(*engine.DateColumn)
	trip := tab.MustColumn("trip").(*engine.IntColumn)
	ton := tab.MustColumn("tonnage").(*engine.IntColumn)
	built := tab.MustColumn("built").(*engine.IntColumn)
	for r := 0; r < tab.NumRows(); r++ {
		if arr.Int64(r) != dep.Int64(r)+trip.Int64(r) {
			t.Fatalf("row %d: arrival != departure + trip", r)
		}
		if trip.Int64(r) <= 0 {
			t.Fatalf("row %d: non-positive trip", r)
		}
		if ton.Int64(r) < 40 || ton.Int64(r) > 1300 {
			t.Fatalf("row %d: tonnage %d out of plausible range", r, ton.Int64(r))
		}
		if built.Int64(r) < 1602 || built.Int64(r) > 1794 {
			t.Fatalf("row %d: built %d outside VOC era", r, built.Int64(r))
		}
	}
}

func TestVOCPlantedDependencies(t *testing.T) {
	// HB-cuts feeds on dependencies: type↔tonnage must be far more
	// dependent than two unrelated attributes like built↔master.
	tab := VOC(10000, 3)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	cut := func(attr string) *seg.Segmentation {
		s, ok, err := seg.InitialCut(ev, ctx, attr, seg.DefaultCutOptions())
		if err != nil || !ok {
			t.Fatalf("cut %s: %v ok=%v", attr, err, ok)
		}
		return s
	}
	typeSeg, tonSeg := cut("type_of_boat"), cut("tonnage")
	builtSeg, masterSeg := cut("built"), cut("master")
	strong, err := seg.Indep(ev, typeSeg, tonSeg)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := seg.Indep(ev, builtSeg, masterSeg)
	if err != nil {
		t.Fatal(err)
	}
	if strong >= 0.99 {
		t.Fatalf("type↔tonnage INDEP = %v, want dependent (<0.99)", strong)
	}
	if weak < 0.99 {
		t.Fatalf("built↔master INDEP = %v, want ≈1", weak)
	}
	if strong >= weak {
		t.Fatalf("dependence ordering wrong: strong %v, weak %v", strong, weak)
	}
}

func TestSkySurveyShapeAndCorrelations(t *testing.T) {
	tab := SkySurvey(5000, 2)
	if tab.NumRows() != 5000 || tab.NumCols() != 5 {
		t.Fatalf("shape = %d x %d", tab.NumRows(), tab.NumCols())
	}
	ra := tab.MustColumn("ra").(*engine.FloatColumn)
	dec := tab.MustColumn("dec").(*engine.FloatColumn)
	class := tab.MustColumn("class").(*engine.StringColumn)
	mag := tab.MustColumn("magnitude").(*engine.FloatColumn)
	var starMag, quasarMag float64
	var stars, quasars int
	for r := 0; r < tab.NumRows(); r++ {
		if v := ra.Float64(r); v < 0 || v >= 360.0001 {
			t.Fatalf("ra out of range: %v", v)
		}
		if v := dec.Float64(r); v < -90 || v > 90 {
			t.Fatalf("dec out of range: %v", v)
		}
		switch class.Str(r) {
		case "star":
			starMag += mag.Float64(r)
			stars++
		case "quasar":
			quasarMag += mag.Float64(r)
			quasars++
		}
	}
	if stars == 0 || quasars == 0 {
		t.Fatal("missing classes")
	}
	if starMag/float64(stars) >= quasarMag/float64(quasars) {
		t.Fatal("stars should be brighter (lower magnitude) than quasars")
	}
}

func TestWebLogShapeAndCorrelations(t *testing.T) {
	tab := WebLog(8000, 5)
	status := tab.MustColumn("status").(*engine.IntColumn)
	section := tab.MustColumn("section").(*engine.StringColumn)
	errRate := map[string][2]int{} // errors, total
	for r := 0; r < tab.NumRows(); r++ {
		s := section.Str(r)
		e := errRate[s]
		if status.Int64(r) >= 400 {
			e[0]++
		}
		e[1]++
		errRate[s] = e
	}
	admin, home := errRate["admin"], errRate["home"]
	if admin[1] == 0 || home[1] == 0 {
		t.Fatal("missing sections")
	}
	adminRate := float64(admin[0]) / float64(admin[1])
	homeRate := float64(home[0]) / float64(home[1])
	if adminRate <= homeRate {
		t.Fatalf("admin error rate %v should exceed home %v", adminRate, homeRate)
	}
}

func TestGaussianMixtureShape(t *testing.T) {
	tab := GaussianMixture(1000, 3, 4, 1)
	if tab.NumCols() != 4 {
		t.Fatalf("cols = %d, want 3 dims + label", tab.NumCols())
	}
	label := tab.MustColumn("label").(*engine.StringColumn)
	if label.Cardinality() != 4 {
		t.Fatalf("clusters = %d, want 4", label.Cardinality())
	}
}

func TestUniformIntsIndependent(t *testing.T) {
	tab := UniformInts(1000, 3, 100, 2)
	if tab.NumCols() != 3 || tab.NumRows() != 1000 {
		t.Fatalf("shape = %d x %d", tab.NumRows(), tab.NumCols())
	}
	col := tab.MustColumn("u0").(*engine.IntColumn)
	for r := 0; r < tab.NumRows(); r++ {
		if v := col.Int64(r); v < 0 || v >= 100 {
			t.Fatalf("value %d out of domain", v)
		}
	}
}

func TestCorrelatedPairKnob(t *testing.T) {
	indep := func(rho float64) float64 {
		tab := CorrelatedPair(8000, rho, 11)
		ev := seg.NewEvaluator(tab)
		ctx := sdl.ContextAll(tab)
		sx, _, err := seg.InitialCut(ev, ctx, "x", seg.DefaultCutOptions())
		if err != nil {
			t.Fatal(err)
		}
		sy, _, err := seg.InitialCut(ev, ctx, "y", seg.DefaultCutOptions())
		if err != nil {
			t.Fatal(err)
		}
		v, err := seg.Indep(ev, sx, sy)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	i0, i50, i95 := indep(0), indep(0.5), indep(0.95)
	if !(i95 < i50 && i50 < i0) {
		t.Fatalf("INDEP not monotone in rho: %v %v %v", i0, i50, i95)
	}
	if i0 < 0.99 {
		t.Fatalf("rho=0 INDEP = %v, want ≈1", i0)
	}
}

func TestZipfCategoricalSkew(t *testing.T) {
	tab := ZipfCategorical(5000, 20, 1.5, 4)
	cat := tab.MustColumn("cat").(*engine.StringColumn)
	counts := engine.StringValueCounts(cat, tab.All())
	max, sum := 0, 0
	for _, vc := range counts {
		if vc.Count > max {
			max = vc.Count
		}
		sum += vc.Count
	}
	if float64(max)/float64(sum) < 0.3 {
		t.Fatalf("top value share %v, want skew ≥ 0.3", float64(max)/float64(sum))
	}
	// s ≤ 1 falls back to a default exponent rather than panicking.
	if tab := ZipfCategorical(100, 5, 0.5, 1); tab.NumRows() != 100 {
		t.Fatal("fallback exponent failed")
	}
}

func TestFigure3PlantedStructure(t *testing.T) {
	tab := Figure3(10000, 1)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	cut := func(attr string) *seg.Segmentation {
		s, ok, err := seg.InitialCut(ev, ctx, attr, seg.DefaultCutOptions())
		if err != nil || !ok {
			t.Fatalf("cut %s", attr)
		}
		return s
	}
	ind := func(a, b *seg.Segmentation) float64 {
		v, err := seg.Indep(ev, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	s1, s2, s3, s4, s5 := cut("att1"), cut("att2"), cut("att3"), cut("att4"), cut("att5")
	strong := ind(s2, s3)
	medium := ind(s4, s5)
	weak := ind(s1, s2)
	cross := ind(s2, s4)
	if !(strong < medium && medium < weak && weak < cross) {
		t.Fatalf("dependence ladder broken: %v < %v < %v < %v expected", strong, medium, weak, cross)
	}
	if cross < 0.99 {
		t.Fatalf("cross-group INDEP = %v, want ≈1", cross)
	}
	if weak >= 0.99 {
		t.Fatalf("weak link INDEP = %v, want < 0.99 so HB-cuts composes it", weak)
	}
}

func TestNamedDispatch(t *testing.T) {
	for _, name := range []string{"voc", "sky", "weblog", "gaussian", "uniform", "figure3"} {
		tab, err := Named(name, 50, 1)
		if err != nil {
			t.Fatalf("Named(%s): %v", name, err)
		}
		if tab.NumRows() != 50 {
			t.Fatalf("Named(%s) rows = %d", name, tab.NumRows())
		}
	}
	if _, err := Named("nope", 10, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
