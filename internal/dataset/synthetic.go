package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"charles/internal/engine"
)

// SkySurvey generates the astronomy workload of the demonstration
// proposal: ra/dec positions, magnitude, redshift, and an object
// class. Classes drive the photometric attributes — quasars are
// faint and high-redshift, stars bright and at zero redshift — so
// class is the attribute HB-cuts should discover as the dependence
// hub.
func SkySurvey(n int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	ra := make([]float64, n)
	dec := make([]float64, n)
	mag := make([]float64, n)
	redshift := make([]float64, n)
	class := make([]string, n)
	// Galaxy clusters concentrate around a few sky centres.
	type center struct{ ra, dec float64 }
	clusters := make([]center, 5)
	for i := range clusters {
		clusters[i] = center{rng.Float64() * 360, rng.Float64()*120 - 60}
	}
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.45: // star
			class[i] = "star"
			ra[i] = rng.Float64() * 360
			dec[i] = rng.Float64()*180 - 90
			mag[i] = 8 + rng.NormFloat64()*2.5
			redshift[i] = math.Abs(rng.NormFloat64()) * 0.0005
		case r < 0.80: // galaxy: clustered on the sky
			class[i] = "galaxy"
			c := clusters[rng.Intn(len(clusters))]
			ra[i] = math.Mod(c.ra+rng.NormFloat64()*4+360, 360)
			dec[i] = clamp(c.dec+rng.NormFloat64()*3, -90, 90)
			mag[i] = 14 + rng.NormFloat64()*2
			redshift[i] = math.Abs(0.08 + rng.NormFloat64()*0.05)
		case r < 0.95: // quasar: faint, high redshift
			class[i] = "quasar"
			ra[i] = rng.Float64() * 360
			dec[i] = rng.Float64()*180 - 90
			mag[i] = 19 + rng.NormFloat64()*1.5
			redshift[i] = math.Abs(1.8 + rng.NormFloat64()*0.8)
		default: // nebula
			class[i] = "nebula"
			ra[i] = rng.Float64() * 360
			dec[i] = clamp(rng.NormFloat64()*20, -90, 90) // galactic plane
			mag[i] = 11 + rng.NormFloat64()*3
			redshift[i] = math.Abs(rng.NormFloat64()) * 0.001
		}
	}
	return engine.MustNewTable("sky",
		engine.NewFloatColumn("ra", ra),
		engine.NewFloatColumn("dec", dec),
		engine.NewFloatColumn("magnitude", mag),
		engine.NewFloatColumn("redshift", redshift),
		engine.NewStringColumn("class", class),
	)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// webSection couples a site section with its typical status mix,
// payload size and mobile share.
type webSection struct {
	name        string
	errRate     float64
	meanBytes   float64
	mobileShare float64
	weight      int
}

var webSections = []webSection{
	{"home", 0.01, 40_000, 0.55, 30},
	{"search", 0.03, 15_000, 0.50, 22},
	{"product", 0.02, 80_000, 0.45, 25},
	{"api", 0.08, 2_000, 0.10, 13},
	{"checkout", 0.05, 30_000, 0.40, 6},
	{"admin", 0.15, 10_000, 0.05, 4},
}

var webCountries = []string{"NL", "DE", "US", "FR", "GB", "BE", "IN", "BR", "JP", "ES"}

// WebLog generates the web-log workload of the Section 1 motivation:
// date, section, HTTP status, bytes, country (Zipf-skewed) and
// device. Status and bytes depend on section; device share does too.
func WebLog(n int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	totalWeight := 0
	for _, s := range webSections {
		totalWeight += s.weight
	}
	day := make([]int64, n)
	section := make([]string, n)
	status := make([]int64, n)
	bytes := make([]int64, n)
	country := make([]string, n)
	device := make([]string, n)
	start := engine.DaysFromDate(2012, time.January, 1)
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(webCountries)-1))
	for i := 0; i < n; i++ {
		sec := pickSection(rng, totalWeight)
		section[i] = sec.name
		day[i] = start + rng.Int63n(366)
		switch r := rng.Float64(); {
		case r < sec.errRate*0.6:
			status[i] = 500
		case r < sec.errRate:
			status[i] = 404
		case r < sec.errRate+0.05:
			status[i] = 301
		default:
			status[i] = 200
		}
		b := sec.meanBytes * (0.3 + rng.ExpFloat64())
		if status[i] >= 400 {
			b = 512 + rng.Float64()*1024 // error pages are small
		}
		bytes[i] = int64(b)
		country[i] = webCountries[zipf.Uint64()]
		if rng.Float64() < sec.mobileShare {
			device[i] = "mobile"
		} else if rng.Float64() < 0.1 {
			device[i] = "tablet"
		} else {
			device[i] = "desktop"
		}
	}
	return engine.MustNewTable("weblog",
		engine.NewDateColumn("day", day),
		engine.NewStringColumn("section", section),
		engine.NewIntColumn("status", status),
		engine.NewIntColumn("bytes", bytes),
		engine.NewStringColumn("country", country),
		engine.NewStringColumn("device", device),
	)
}

func pickSection(rng *rand.Rand, totalWeight int) webSection {
	w := rng.Intn(totalWeight)
	for _, s := range webSections {
		if w < s.weight {
			return s
		}
		w -= s.weight
	}
	return webSections[len(webSections)-1]
}

// GaussianMixture generates n points from k spherical Gaussian
// clusters in dims dimensions (float columns x0..x<dims-1>) plus the
// ground-truth cluster label — the homogeneity workload of E9/E10.
func GaussianMixture(n, dims, k int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		// Rejection-sample centers at least 30 apart so the planted
		// clusters are actually separable (bounded retries keep the
		// generator total even for large k).
		for attempt := 0; ; attempt++ {
			cand := make([]float64, dims)
			for d := range cand {
				cand[d] = rng.Float64() * 100
			}
			ok := true
			for _, prev := range centers[:c] {
				distSq := 0.0
				for d := range cand {
					diff := cand[d] - prev[d]
					distSq += diff * diff
				}
				if distSq < 30*30 {
					ok = false
					break
				}
			}
			if ok || attempt > 200 {
				centers[c] = cand
				break
			}
		}
	}
	cols := make([][]float64, dims)
	for d := range cols {
		cols[d] = make([]float64, n)
	}
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		labels[i] = fmt.Sprintf("cluster%d", c)
		for d := 0; d < dims; d++ {
			cols[d][i] = centers[c][d] + rng.NormFloat64()*6
		}
	}
	tableCols := make([]engine.Column, 0, dims+1)
	for d := range cols {
		tableCols = append(tableCols, engine.NewFloatColumn(fmt.Sprintf("x%d", d), cols[d]))
	}
	tableCols = append(tableCols, engine.NewStringColumn("label", labels))
	return engine.MustNewTable("gaussian", tableCols...)
}

// UniformInts generates cols independent uniform integer columns
// u0..u<cols-1> over [0, domain) — the null model for Proposition 1.
func UniformInts(n, cols int, domain int64, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	tableCols := make([]engine.Column, cols)
	for c := 0; c < cols; c++ {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(domain)
		}
		tableCols[c] = engine.NewIntColumn(fmt.Sprintf("u%d", c), vals)
	}
	return engine.MustNewTable("uniform", tableCols...)
}

// CorrelatedPair generates two integer columns x, y whose dependence
// is controlled by rho in [0, 1]: each y is a noisy copy of x with
// probability rho and independent noise otherwise. rho 0 gives
// independence (INDEP ≈ 1), rho 1 near-functional dependence.
func CorrelatedPair(n int, rho float64, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	const domain = 1000
	x := make([]int64, n)
	y := make([]int64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Int63n(domain)
		if rng.Float64() < rho {
			y[i] = x[i] + rng.Int63n(domain/20) - domain/40
			if y[i] < 0 {
				y[i] = 0
			}
			if y[i] >= domain {
				y[i] = domain - 1
			}
		} else {
			y[i] = rng.Int63n(domain)
		}
	}
	return engine.MustNewTable("pair",
		engine.NewIntColumn("x", x),
		engine.NewIntColumn("y", y),
	)
}

// ZipfCategorical generates a nominal column with numValues distinct
// values under a Zipf(s) frequency law plus an integer column whose
// range depends on the value's rank — the skewed-nominal workload
// for the frequency-ordering rule of Section 4.1.
func ZipfCategorical(n, numValues int, s float64, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	if s <= 1 {
		s = 1.2
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(numValues-1))
	cat := make([]string, n)
	val := make([]int64, n)
	for i := 0; i < n; i++ {
		rank := int64(zipf.Uint64())
		cat[i] = fmt.Sprintf("v%02d", rank)
		val[i] = rank*100 + rng.Int63n(100)
	}
	return engine.MustNewTable("zipf",
		engine.NewStringColumn("cat", cat),
		engine.NewIntColumn("val", val),
	)
}

// Figure3 generates the 5-attribute table behind the Figure 3
// execution example, with planted dependencies tuned so HB-cuts
// reproduces the figure's grouping:
//
//	att2 ↔ att3  strong   (composed first)
//	att4 ↔ att5  medium   (composed second)
//	att1 ↔ att2,att3 weak (composed third)
//	att1..3 ⟂ att4..5     (never composed: the figure's "No split")
func Figure3(n int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	const domain = 1000
	att1 := make([]int64, n)
	att2 := make([]int64, n)
	att3 := make([]int64, n)
	att4 := make([]int64, n)
	att5 := make([]int64, n)
	noise := func(scale int64) int64 { return rng.Int63n(2*scale+1) - scale }
	for i := 0; i < n; i++ {
		z1 := rng.Int63n(domain)
		z2 := rng.Int63n(domain)
		att2[i] = clampInt(z1+noise(60), 0, domain-1)  // strong pair
		att3[i] = clampInt(z1+noise(60), 0, domain-1)  // strong pair
		att1[i] = clampInt(z1+noise(420), 0, domain-1) // weak link to z1
		att4[i] = clampInt(z2+noise(180), 0, domain-1) // medium pair
		att5[i] = clampInt(z2+noise(180), 0, domain-1) // medium pair
	}
	return engine.MustNewTable("figure3",
		engine.NewIntColumn("att1", att1),
		engine.NewIntColumn("att2", att2),
		engine.NewIntColumn("att3", att3),
		engine.NewIntColumn("att4", att4),
		engine.NewIntColumn("att5", att5),
	)
}

// Chain generates attrs integer columns x0..x<attrs-1> forming a
// dependency chain: x_{i+1} is x_i plus bounded noise, so every
// adjacent pair is dependent and HB-cuts keeps composing — the
// worst-case workload for the horizontal-scalability experiment E6.
func Chain(n, attrs int, noise int64, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	const domain = 1000
	cols := make([]engine.Column, attrs)
	prev := make([]int64, n)
	for i := range prev {
		prev[i] = rng.Int63n(domain)
	}
	for a := 0; a < attrs; a++ {
		vals := make([]int64, n)
		copy(vals, prev)
		cols[a] = engine.NewIntColumn(fmt.Sprintf("x%d", a), vals)
		for i := range prev {
			prev[i] = clampInt(prev[i]+rng.Int63n(2*noise+1)-noise, 0, domain-1)
		}
	}
	return engine.MustNewTable("chain", cols...)
}

// Figure2Boats returns the 8-row literal table realizing the worked
// examples of Figure 2: per-type tonnage medians 2000 (fluit) and
// 3000 (jacht), per-type date medians 1744 and 1760.
func Figure2Boats() *engine.Table {
	return engine.MustNewTable("boats",
		engine.NewStringColumn("type", []string{
			"fluit", "fluit", "fluit", "fluit",
			"jacht", "jacht", "jacht", "jacht",
		}),
		engine.NewIntColumn("tonnage", []int64{
			1000, 1800, 2000, 5000,
			1000, 2900, 3000, 5000,
		}),
		engine.NewIntColumn("date", []int64{
			1700, 1740, 1744, 1780,
			1700, 1755, 1760, 1780,
		}),
	)
}

func clampInt(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
