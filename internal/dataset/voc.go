// Package dataset provides deterministic synthetic data generators
// for every workload the paper mentions or the experiments need: the
// VOC voyages relation of Figure 1, the astronomy database of the
// demonstration proposal, web logs (the Section 1 motivation),
// Gaussian mixtures, independent uniforms, pairs with a tunable
// dependence knob, Zipf-skewed nominals, and the planted-dependency
// table behind the Figure 3 execution example. All generators are
// pure functions of (size, seed).
package dataset

import (
	"fmt"
	"math/rand"
	"time"

	"charles/internal/engine"
)

// boatClass describes one VOC ship type and the dependencies hanging
// off it: tonnage range, speed (drives trip duration, hence
// cape_arrival), and the harbours it typically served.
type boatClass struct {
	name     string
	minTon   int64
	maxTon   int64
	speed    float64 // relative speed; higher = shorter trips
	harbours []string
	weight   int // relative frequency
}

// The two most frequent classes are the large ocean-going ships and
// they sail from the home ports (Texel, Rammekens), while the
// lighter classes work the Asian stations (Bantam, Surat, Batavia).
// This alignment makes the type↔tonnage and harbour↔tonnage
// dependencies visible to binary frequency-ordered cuts — the
// structure behind the "departure_harbour × tonnage" answers of
// Figure 1.
var boatClasses = []boatClass{
	{"fluit", 300, 600, 0.9, []string{"Texel", "Rammekens"}, 30},
	{"spiegelretourschip", 700, 1200, 0.8, []string{"Texel", "Rammekens", "Ceylon"}, 22},
	{"jacht", 80, 300, 1.4, []string{"Bantam", "Batavia", "Surat"}, 16},
	{"pinas", 200, 500, 1.1, []string{"Goeree", "Batavia"}, 14},
	{"galjoot", 60, 200, 1.0, []string{"Goeree", "Rammekens"}, 10},
	{"hoeker", 50, 150, 1.0, []string{"Surat", "Goeree"}, 8},
}

// yards maps VOC chambers to shipyards; the yard depends on the
// departure harbour's region, another compositional dependency.
var yardsByHarbour = map[string][]string{
	"Texel":     {"Amsterdam", "Hoorn", "Enkhuizen"},
	"Rammekens": {"Zeeland", "Middelburg"},
	"Goeree":    {"Rotterdam", "Delft"},
	"Batavia":   {"Batavia", "Amsterdam"},
	"Bantam":    {"Amsterdam", "Zeeland"},
	"Surat":     {"Zeeland", "Rotterdam"},
	"Ceylon":    {"Amsterdam", "Middelburg"},
}

var masterFirst = []string{
	"Jan", "Pieter", "Willem", "Cornelis", "Dirck", "Hendrick", "Gerrit",
	"Claes", "Adriaen", "Jacob", "Maerten", "Symon", "Abel", "Joris",
}

var masterLast = []string{
	"Tasman", "de Houtman", "van Riebeeck", "Bontekoe", "van Neck",
	"Schouten", "de Vlamingh", "Janszoon", "Hartog", "Carstensz",
	"van Diemen", "Roggeveen", "de Ruyter", "Evertsen",
}

// VOC generates n synthetic Dutch East India Company voyages with
// the Figure 1 schema: type_of_boat, tonnage, built, yard,
// departure_date, departure_harbour, cape_arrival, trip, master.
// Attribute dependencies are planted the way HB-cuts expects to find
// them in the real data: tonnage and harbour depend on boat type,
// yard on harbour, trip duration on tonnage and speed, cape_arrival
// on departure_date plus trip.
func VOC(n int, seed int64) *engine.Table {
	rng := rand.New(rand.NewSource(seed))
	totalWeight := 0
	for _, bc := range boatClasses {
		totalWeight += bc.weight
	}
	types := make([]string, n)
	tonnage := make([]int64, n)
	built := make([]int64, n)
	yard := make([]string, n)
	departure := make([]int64, n)
	harbour := make([]string, n)
	arrival := make([]int64, n)
	trip := make([]int64, n)
	master := make([]string, n)

	epoch1602 := engine.DaysFromDate(1602, time.January, 1)
	for i := 0; i < n; i++ {
		bc := pickBoatClass(rng, totalWeight)
		types[i] = bc.name
		// Later-built ships trend larger: era adds up to 25%.
		year := 1602 + rng.Int63n(193) // 1602..1794
		era := float64(year-1602) / 192
		span := float64(bc.maxTon - bc.minTon)
		tonnage[i] = bc.minTon + int64(rng.Float64()*span*(0.75+0.25*era)+0.5)
		built[i] = year
		harbour[i] = bc.harbours[rng.Intn(len(bc.harbours))]
		ys := yardsByHarbour[harbour[i]]
		yard[i] = ys[rng.Intn(len(ys))]
		// Departure within 40 years of build, no later than 1795.
		depYear := year + 1 + rng.Int63n(10)
		if depYear > 1795 {
			depYear = 1795
		}
		dayOfYear := rng.Int63n(365)
		departure[i] = epoch1602 + (depYear-1602)*365 + dayOfYear
		// Trip to the Cape: base ~120 days, slower and heavier ships
		// take longer; winter departures add delay.
		base := 120 / bc.speed
		tonFactor := float64(tonnage[i]) / 400
		season := 1.0
		if m := (dayOfYear / 30) % 12; m >= 9 || m <= 1 {
			season = 1.2
		}
		days := base*(0.8+0.4*tonFactor)*season + rng.Float64()*30
		trip[i] = int64(days + 0.5)
		arrival[i] = departure[i] + trip[i]
		master[i] = masterFirst[rng.Intn(len(masterFirst))] + " " + masterLast[rng.Intn(len(masterLast))]
	}
	return engine.MustNewTable("voyages",
		engine.NewStringColumn("type_of_boat", types),
		engine.NewIntColumn("tonnage", tonnage),
		engine.NewIntColumn("built", built),
		engine.NewStringColumn("yard", yard),
		engine.NewDateColumn("departure_date", departure),
		engine.NewStringColumn("departure_harbour", harbour),
		engine.NewDateColumn("cape_arrival", arrival),
		engine.NewIntColumn("trip", trip),
		engine.NewStringColumn("master", master),
	)
}

func pickBoatClass(rng *rand.Rand, totalWeight int) boatClass {
	w := rng.Intn(totalWeight)
	for _, bc := range boatClasses {
		if w < bc.weight {
			return bc
		}
		w -= bc.weight
	}
	return boatClasses[len(boatClasses)-1]
}

// Named returns a generator by name for the CLI tools: voc, sky,
// weblog, gaussian, uniform, figure3.
func Named(name string, n int, seed int64) (*engine.Table, error) {
	switch name {
	case "voc":
		return VOC(n, seed), nil
	case "sky":
		return SkySurvey(n, seed), nil
	case "weblog":
		return WebLog(n, seed), nil
	case "gaussian":
		return GaussianMixture(n, 3, 4, seed), nil
	case "uniform":
		return UniformInts(n, 4, 1000, seed), nil
	case "figure3":
		return Figure3(n, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want voc, sky, weblog, gaussian, uniform or figure3)", name)
	}
}
