package obs

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter Value() = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Errorf("nil gauge Value() = %d", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram is not inert")
	}
	var tr *Trace
	sp := tr.Start("x")
	sp.Child("y").End()
	sp.End()
	tr.Observe("z", time.Second)
	if tr.Summary() != nil {
		t.Error("nil trace Summary() != nil")
	}
	if TraceFrom(nil) != nil {
		t.Error("TraceFrom(nil ctx) != nil")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value() = %d, want 8000", c.Value())
	}
	c.Add(-5)
	if c.Value() != 8000 {
		t.Error("counter accepted a negative add")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-16.5) > 1e-9 {
		t.Errorf("Sum() = %g, want 16.5", got)
	}
	counts, inf := h.snapshot()
	wantCounts := []int64{1, 2, 1}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, counts[i], w)
		}
	}
	if inf != 1 {
		t.Errorf("overflow bucket = %d, want 1", inf)
	}
	// Median rank 2.5 lands in the (1,2] bucket: 1 + (2.5-1)/2 * 1.
	if got := h.Quantile(0.5); math.Abs(got-1.75) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 1.75", got)
	}
	// p99 lands in overflow: clamp to the last finite bound.
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("Quantile(0.99) = %g, want 4", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0", got)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("charles_test_hits_total", "test hits")
	g := r.NewGauge("charles_test_depth", "queue depth")
	r.NewGaugeFunc("charles_test_live", "live value", func() int64 { return 7 })
	h := r.NewHistogram("charles_test_seconds", "latency", []float64{0.1, 1})
	c.Add(3)
	g.Set(-2)
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP charles_test_hits_total test hits\n# TYPE charles_test_hits_total counter\ncharles_test_hits_total 3\n",
		"charles_test_depth -2\n",
		"charles_test_live 7\n",
		"# TYPE charles_test_seconds histogram\n",
		"charles_test_seconds_bucket{le=\"0.1\"} 1\n",
		"charles_test_seconds_bucket{le=\"1\"} 1\n",
		"charles_test_seconds_bucket{le=\"+Inf\"} 2\n",
		"charles_test_seconds_sum 5.05\n",
		"charles_test_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	names := r.Names()
	if len(names) != 4 || names[0] != "charles_test_hits_total" {
		t.Errorf("Names() = %v", names)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"hits_total", "charles_UpperCase", "charles_", "charles__double", "charles_has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			NewRegistry().NewCounter(bad, "")
		}()
	}
	r := NewRegistry()
	r.NewCounter("charles_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("charles_dup_total", "")
}

func TestTraceAccumulatesStages(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 3; i++ {
		sp := tr.Start("pairs")
		ch := sp.Child("chi2")
		ch.End()
		sp.End()
	}
	tr.Observe("queue_wait", 5*time.Millisecond)
	sum := tr.Summary()
	if len(sum) != 2 {
		t.Fatalf("Summary() has %d top stages, want 2: %+v", len(sum), sum)
	}
	pairs := sum[0]
	if pairs.Name != "pairs" || pairs.Count != 3 {
		t.Errorf("pairs stage = %+v", pairs)
	}
	if len(pairs.Children) != 1 || pairs.Children[0].Name != "chi2" || pairs.Children[0].Count != 3 {
		t.Errorf("chi2 child = %+v", pairs.Children)
	}
	if sum[1].Name != "queue_wait" || sum[1].DurationNS < int64(5*time.Millisecond) {
		t.Errorf("queue_wait stage = %+v", sum[1])
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Errorf("summary does not marshal: %v", err)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("TraceFrom did not return the stored trace")
	}
	if ContextWithTrace(ctx, nil) != ctx {
		t.Error("ContextWithTrace(nil) must be a no-op")
	}
	if TraceFrom(context.Background()) != nil {
		t.Error("TraceFrom on a bare ctx should be nil")
	}
}
