package obs

import (
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// Registry owns a process's metric families and renders them in the
// Prometheus text exposition format. Registration happens at boot —
// a malformed or duplicate name is a programming error and panics —
// and reads are concurrent-safe thereafter.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]bool
}

type family struct {
	name  string
	help  string
	kind  string // "counter", "gauge", "histogram"
	ctr   *Counter
	gauge *Gauge
	fn    func() int64 // gauge-from-function, evaluated at scrape
	hist  *Histogram
}

var metricNameRx = regexp.MustCompile(`^charles(_[a-z0-9]+)+$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

func (r *Registry) register(f *family) {
	if !metricNameRx.MatchString(f.name) {
		panic("obs: metric name " + strconv.Quote(f.name) + " must be snake_case with a charles_ prefix")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[f.name] {
		panic("obs: metric " + f.name + " registered twice")
	}
	r.byName[f.name] = true
	r.families = append(r.families, f)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: "counter", ctr: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: "gauge", gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is read from fn at
// scrape time — for values another structure already tracks
// (queue depth, cache size) so they are not double-counted.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.register(&family{name: name, help: help, kind: "gauge", fn: fn})
}

// NewCounterFunc is NewGaugeFunc with counter semantics: fn must be
// monotonically non-decreasing (a total another structure already
// accumulates, like the job manager's submission count).
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.register(&family{name: name, help: help, kind: "counter", fn: fn})
}

// NewHistogram registers and returns a histogram over the given
// sorted upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&family{name: name, help: help, kind: "histogram", hist: h})
	return h
}

// WritePrometheus renders every family in registration order:
// # HELP and # TYPE lines first, then the samples. Histograms emit
// cumulative _bucket{le="..."} series plus _sum and _count, exactly
// as the Prometheus text format specifies.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		var err error
		switch {
		case f.ctr != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.ctr.Value())
		case f.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
		case f.fn != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.fn())
		case f.hist != nil:
			err = writeHistogram(w, f.name, f.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	counts, inf := h.snapshot()
	var cum int64
	for i, c := range counts {
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(h.bounds[i]), cum); err != nil {
			return err
		}
	}
	cum += inf
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Names reports the registered family names in registration order —
// the smoke test and grammar test use it to assert coverage.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}
