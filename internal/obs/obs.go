// Package obs is the observability substrate for the whole stack:
// atomic counters and gauges, fixed-bucket histograms, a Registry
// with Prometheus text-format exposition, and a lightweight span
// Trace for per-advise stage timing. It is stdlib-only and built
// around one rule: instrumentation is opt-in and free when absent.
// Every method on Counter, Gauge, Histogram, Trace, and Span is
// nil-safe, so library packages hold plain pointers that default to
// nil and the hot paths pay a single predictable branch.
package obs

import "sync/atomic"

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative n is ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count. Nil reads as zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready
// to use; a nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value. Nil reads as zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
