package obs

import (
	"context"
	"sync"
	"time"
)

// Trace accumulates named stage timings for one logical operation
// (an advise). Stages with the same name under the same parent
// accumulate — an adaptive loop that opens "trials" forty times
// yields one stage with count 40 — so the summary stays bounded no
// matter how long the operation runs. All methods are safe on a nil
// *Trace and safe for concurrent use, but spans themselves are
// owned by the goroutine that Started them.
type Trace struct {
	mu   sync.Mutex
	root stage
}

type stage struct {
	name     string
	count    int64
	total    time.Duration
	children []*stage
}

// Span is one open stage timer. End stops it and folds the elapsed
// time into its trace.
type Span struct {
	tr     *Trace
	parent *stage
	name   string
	start  time.Time
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{}
}

// Start opens a top-level stage. The returned span must be Ended on
// every path (the obsnames analyzer machine-checks this).
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, parent: &t.root, name: name, start: time.Now()}
}

// Child opens a stage nested under s. Safe on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	// Resolve the child's parent node now, under the lock, so End
	// can fold into it without re-walking.
	s.tr.mu.Lock()
	node := s.parent.child(s.name)
	s.tr.mu.Unlock()
	return &Span{tr: s.tr, parent: node, name: name, start: time.Now()}
}

// End closes the span, accumulating its elapsed time. Safe on a nil
// span and idempotent only in the sense that a second End records a
// second (near-zero) interval — call it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	node := s.parent.child(s.name)
	node.count++
	node.total += d
	s.tr.mu.Unlock()
}

// Observe folds a pre-measured duration into a top-level stage —
// for timings captured outside a span (queue wait, for instance).
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	node := t.root.child(name)
	node.count++
	node.total += d
	t.mu.Unlock()
}

// child finds or appends the named child. Callers hold t.mu.
func (st *stage) child(name string) *stage {
	for _, c := range st.children {
		if c.name == name {
			return c
		}
	}
	c := &stage{name: name}
	st.children = append(st.children, c)
	return c
}

// StageSummary is one node of a serialized trace.
type StageSummary struct {
	Name       string         `json:"name"`
	Count      int64          `json:"count"`
	DurationNS int64          `json:"duration_ns"`
	Children   []StageSummary `json:"children,omitempty"`
}

// Summary snapshots the trace as a stage tree, in first-start
// order. A nil trace summarizes to nil.
func (t *Trace) Summary() []StageSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return summarize(t.root.children)
}

func summarize(sts []*stage) []StageSummary {
	if len(sts) == 0 {
		return nil
	}
	out := make([]StageSummary, len(sts))
	for i, st := range sts {
		out[i] = StageSummary{
			Name:       st.name,
			Count:      st.count,
			DurationNS: int64(st.total),
			Children:   summarize(st.children),
		}
	}
	return out
}

type traceKey struct{}

// ContextWithTrace returns a context carrying tr. A nil trace
// returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom extracts the trace from ctx, or nil — including for a
// nil ctx, so deep library code can call it unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
