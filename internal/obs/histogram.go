package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed upper-bound buckets, the
// same cumulative-bucket model Prometheus uses. Buckets are chosen
// at construction and never change, so Observe is lock-free: one
// binary search plus three atomic adds. A nil *Histogram discards
// observations.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64  // observations above the last bound
	count  atomic.Int64  // total observations
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// DefaultLatencyBuckets spans 100µs to ~100s in roughly ×2.5 steps —
// wide enough for both an in-memory advise (~ms) and a cold 10M-row
// one (~seconds).
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
}

// NewHistogram builds a histogram over the given sorted upper
// bounds. Callers normally go through Registry.NewHistogram.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value. NaN is dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Find the first bound >= v. Bucket counts are per-bucket here
	// and made cumulative at exposition time.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.counts) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations. Nil reads as zero.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values. Nil reads as zero.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns per-bucket counts (not cumulative) plus the
// overflow count, read bucket-at-a-time: histograms tolerate a
// torn read across concurrent Observes, which can only make the
// snapshot off by in-flight observations.
func (h *Histogram) snapshot() (counts []int64, inf int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.inf.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the owning bucket, the same estimate
// Prometheus' histogram_quantile makes. With no observations it
// returns 0; if the quantile lands in the overflow bucket it
// returns the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return 0
	}
	counts, inf := h.snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	total += inf
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
