// Package leakcheck is the goroutine-hygiene helper for tests: it
// snapshots the goroutine count when a test starts and fails the test
// if the count has not returned to baseline by the time its cleanups
// finish. A serving process that leaks a goroutine per advise, per
// fault, or per shutdown dies slowly under the "millions of users"
// load the ROADMAP targets; a leak caught here is a leak that never
// ships.
//
// Call it before constructing the thing whose shutdown you are
// checking — t.Cleanup runs LIFO, so the check registered first runs
// last, after the subject's own cleanup tore it down:
//
//	leakcheck.Check(t)
//	m := jobs.NewManager(opt)          // its cleanup shuts the pool down
//	t.Cleanup(func() { m.Shutdown(ctx) })
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check registers a cleanup that polls (goroutines settle
// asynchronously after a Shutdown returns) until the goroutine count
// is back at or below the baseline taken now, failing the test with a
// full stack dump if it never is.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines at baseline, %d after cleanup; stacks:\n%s", base, n, buf)
	})
}
