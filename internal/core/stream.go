package core

import (
	"charles/internal/sdl"
	"charles/internal/seg"
)

// Stream is the lazy generation engine sketched in Section 5.2:
// "the system would only generate a small set of queries, and create
// more upon request". It yields the same segmentations as HBCuts but
// one at a time — first the initial single-attribute candidates
// (ranked by the configured score), then one composed segmentation
// per Next call until a stopping condition fires. The trade-off the
// paper accepts is that a lazy stream cannot be globally ranked.
type Stream struct {
	st      *hbState
	pending []Scored
	done    bool
}

// NewStream seeds the stream: the initial cuts are computed eagerly
// (they are cheap and every one is an answer); composition work is
// deferred to Next.
func NewStream(ev *seg.Evaluator, context sdl.Query, cfg Config) (*Stream, error) {
	st, err := newHBState(ev, context, cfg)
	if err != nil {
		return nil, err
	}
	s := &Stream{st: st}
	for _, c := range st.cand {
		s.pending = append(s.pending, newScored(c.seg, st.cfg.Score))
	}
	sortScored(s.pending)
	return s, nil
}

// Next returns the next segmentation. The boolean is false when the
// stream is exhausted (the HB-cuts stopping conditions fired).
func (s *Stream) Next() (Scored, bool, error) {
	if len(s.pending) > 0 {
		out := s.pending[0]
		s.pending = s.pending[1:]
		return out, true, nil
	}
	if s.done {
		return Scored{}, false, nil
	}
	composed, _, err := s.st.step()
	if err != nil {
		return Scored{}, false, err
	}
	if composed == nil {
		s.done = true
		return Scored{}, false, nil
	}
	return newScored(composed, s.st.cfg.Score), true, nil
}

// Drain consumes the remainder of the stream and returns it ranked,
// matching HBCuts' eager output for the already-consumed prefix plus
// the rest.
func (s *Stream) Drain() ([]Scored, error) {
	var out []Scored
	for {
		sc, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			sortScored(out)
			return out, nil
		}
		out = append(out, sc)
	}
}

// Result exposes the run statistics accumulated so far (iterations,
// INDEP evaluations, stop reason once done).
func (s *Stream) Result() *Result { return s.st.res }
