// Package core implements the paper's primary contribution: the
// HB-cuts heuristic of Section 4 (Figure 4 pseudo-code), which
// generates segmentations by recursive binary cuts composed along
// the most dependent attributes, plus the ranking of results and the
// Section 5.2 future-work extensions — lazy generation, arbitrary
// quantiles, sampled medians, chi-squared stopping, and adaptive
// per-piece cuts.
package core

import (
	"sort"

	"charles/internal/par"
	"charles/internal/seg"
)

// PairPolicy selects how HB-cuts picks the candidate pair to
// compose at each iteration.
type PairPolicy uint8

// Pair selection policies.
const (
	// PairMostDependent is the paper's rule: the pair with the
	// smallest INDEP quotient.
	PairMostDependent PairPolicy = iota
	// PairRandom composes a uniformly random pair — the ablation of
	// dependence-driven composition used in experiment E9.
	PairRandom
)

// Config parameterizes HB-cuts. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// MaxIndep is the INDEP threshold of Figure 4: composition stops
	// when the most dependent pair's quotient reaches it. The paper:
	// "a threshold of 0.99 gave satisfying results with most data
	// sets".
	MaxIndep float64
	// MaxDepth bounds the number of queries in a composed
	// segmentation ("a pie chart with more than a dozen slices is
	// hard to read").
	MaxDepth int
	// Cut configures the CUT primitive (arity, nominal ordering,
	// sampling).
	Cut seg.CutOptions
	// UseChiSquare replaces the fixed MaxIndep threshold with the
	// statistical hypothesis test Section 4.2 suggests: composition
	// stops when the pair is consistent with independence at
	// significance ChiAlpha.
	UseChiSquare bool
	// ChiAlpha is the significance level for UseChiSquare (default
	// 0.05).
	ChiAlpha float64
	// Pairing selects the composition pair policy.
	Pairing PairPolicy
	// Seed drives PairRandom (ignored otherwise).
	Seed int64
	// Score ranks the output; nil means EntropyScore (the paper
	// returns results "by order of entropy").
	Score ScoreFunc
	// Workers bounds the fan-out of the advisor core: initial cuts,
	// per-step INDEP pair evaluations, the pairwise contingency cell
	// loops behind them, and adaptive attribute search run on at most
	// this many goroutines. Values below 1 mean one worker per
	// available CPU (runtime.GOMAXPROCS). The ranked output is
	// identical for every worker count.
	Workers int
	// Selection picks the physical representation of segment
	// selections inside the pairwise operators (PRODUCT and the
	// contingency tables behind INDEP): seg.RepAuto (the default)
	// packs extents covering ≥ 1/64 of the table into word-wise
	// AND+popcount bitmaps and keeps sparse ones as sorted row-id
	// vectors; seg.RepVector and seg.RepBitmap force one
	// representation everywhere. All settings produce identical
	// ranked output — only the wall-clock moves.
	Selection seg.SelectionRep
	// ChunkRows fixes the storage layer's row-range chunk width —
	// the shard the table, its selections and its bitmaps split into
	// for parallel scanning and zone-map skipping. 0 (the default)
	// means the automatic width (engine.DefaultChunkRows, 64K rows);
	// other values are rounded up to a power of two. Like Workers
	// and Selection it never changes ranked output — the k-th
	// smallest of a multiset does not depend on how the multiset is
	// sharded — only where the wall-clock and memory go.
	ChunkRows int
}

// DefaultConfig returns the paper's configuration: maxIndep 0.99,
// maxDepth 12, binary median cuts, entropy ranking.
func DefaultConfig() Config {
	return Config{
		MaxIndep: 0.99,
		MaxDepth: 12,
		Cut:      seg.DefaultCutOptions(),
		ChiAlpha: 0.05,
	}
}

func (c Config) normalize() Config {
	if c.MaxIndep <= 0 {
		c.MaxIndep = 0.99
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.ChiAlpha <= 0 {
		c.ChiAlpha = 0.05
	}
	if c.Score == nil {
		c.Score = EntropyScore
	}
	c.Workers = par.Workers(c.Workers)
	return c
}

// ScoreFunc maps a segmentation's metrics to a ranking score;
// higher is better.
type ScoreFunc func(seg.Metrics) float64

// EntropyScore is the paper's ranking: by entropy (Definition 4).
func EntropyScore(m seg.Metrics) float64 { return m.Entropy }

// WeightedScore combines the three criteria of Section 3 into one
// score: we·entropy + wb·breadth − ws·simplicity. The principles
// "act as safeguards against one another", so exposing the weights
// lets users move through the 3-dimensional criteria space.
func WeightedScore(we, wb, ws float64) ScoreFunc {
	return func(m seg.Metrics) float64 {
		return we*m.Entropy + wb*float64(m.Breadth) - ws*float64(m.Simplicity)
	}
}

// BalanceScore ranks by entropy relative to the maximum for the
// segmentation's depth, preferring balanced splits over merely deep
// ones.
func BalanceScore(m seg.Metrics) float64 { return m.Balance }

// Scored pairs a segmentation with its computed metrics and ranking
// score.
type Scored struct {
	Seg     *seg.Segmentation
	Metrics seg.Metrics
	Score   float64
}

func newScored(s *seg.Segmentation, score ScoreFunc) Scored {
	m := s.ComputeMetrics()
	return Scored{Seg: s, Metrics: m, Score: score(m)}
}

// sortScored orders by score descending with deterministic
// tie-breaks: breadth descending, simplicity ascending, depth
// descending, then canonical key.
func sortScored(out []Scored) {
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Metrics.Breadth != b.Metrics.Breadth {
			return a.Metrics.Breadth > b.Metrics.Breadth
		}
		if a.Metrics.Simplicity != b.Metrics.Simplicity {
			return a.Metrics.Simplicity < b.Metrics.Simplicity
		}
		if a.Metrics.Depth != b.Metrics.Depth {
			return a.Metrics.Depth > b.Metrics.Depth
		}
		return a.Seg.Key() < b.Seg.Key()
	})
}
