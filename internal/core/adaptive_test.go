package core

import (
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func TestAdaptiveCutsPartitions(t *testing.T) {
	tab := dataset.VOC(3000, 5)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "trip")
	if err != nil {
		t.Fatal(err)
	}
	out, err := AdaptiveCuts(ev, ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no adaptive segmentations")
	}
	for _, s := range out {
		if err := seg.ValidatePartition(ev, ctx, s.Seg); err != nil {
			t.Fatal(err)
		}
		if s.Metrics.Depth > DefaultConfig().MaxDepth {
			t.Fatalf("depth %d exceeds bound", s.Metrics.Depth)
		}
	}
}

func TestAdaptiveCutsMixedAttributes(t *testing.T) {
	// The whole point of the extension: pieces may be cut on
	// different attributes. On VOC data with a nominal plus numeric
	// context, the deepest segmentation should constrain different
	// attribute sets in different queries.
	tab := dataset.VOC(5000, 6)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxDepth = 6
	out, err := AdaptiveCuts(ev, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, s := range out {
		attrSets := map[string]bool{}
		for _, q := range s.Seg.Queries {
			key := ""
			for _, a := range q.ConstrainedAttrs() {
				key += a + "|"
			}
			attrSets[key] = true
		}
		if len(attrSets) >= 2 {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("adaptive cuts never produced pieces with different attribute sets")
	}
}

func TestAdaptiveCutsDegenerateInputs(t *testing.T) {
	tab := dataset.Figure3(100, 1)
	ev := seg.NewEvaluator(tab)
	if _, err := AdaptiveCuts(ev, sdl.Query{}, DefaultConfig()); err == nil {
		t.Fatal("empty context accepted")
	}
	ctx := sdl.MustQuery(sdl.RangeC("att1", engine.Int(-10), engine.Int(-5), true, true))
	if _, err := AdaptiveCuts(ev, ctx, DefaultConfig()); err == nil {
		t.Fatal("empty extent accepted")
	}
}

func TestAdaptiveCutsBalancedSplits(t *testing.T) {
	tab := dataset.UniformInts(4096, 2, 1<<20, 9)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	cfg := DefaultConfig()
	cfg.MaxDepth = 8
	out, err := AdaptiveCuts(ev, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting the largest piece at non-power-of-two depths leaves
	// a structural imbalance (e.g. counts [2n, n, n] at depth 3), so
	// only require near-perfect balance at power-of-two depths and a
	// loose floor elsewhere.
	for _, s := range out {
		if s.Metrics.Balance < 0.9 {
			t.Fatalf("depth %d balance %v", s.Metrics.Depth, s.Metrics.Balance)
		}
		d := s.Metrics.Depth
		if d&(d-1) == 0 && s.Metrics.Balance < 0.99 {
			t.Fatalf("power-of-two depth %d balance %v, want ≈1", d, s.Metrics.Balance)
		}
	}
}
