package core

import (
	"fmt"

	"charles/internal/sdl"
	"charles/internal/seg"
)

// AdaptiveCuts implements the Section 5.2 extension that lifts the
// paper's "heavy restriction: all queries in a segmentation are
// based on the same attributes". It grows one segmentation greedily:
// at each step the largest segment is split, preferring an attribute
// that does not yet constrain that segment (each split should reveal
// a new aspect, maximizing per-piece breadth) and breaking ties by
// the balance of the resulting binary cut. Different pieces may
// therefore be cut on different attributes — a decision-tree-shaped
// exploration, cf. DynaCet in Section 6.2. The full search space is
// exponential; this greedy policy is the tractable rendering the
// paper hints at.
//
// The returned slice holds the segmentation after every split
// (depths 2..MaxDepth), ranked like HBCuts output.
func AdaptiveCuts(ev *seg.Evaluator, context sdl.Query, cfg Config) ([]Scored, error) {
	cfg = cfg.normalize()
	attrs := context.Attrs()
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: context mentions no attributes")
	}
	count, err := ev.Count(context)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("core: context %s selects no rows", context)
	}
	cur := &seg.Segmentation{Queries: []sdl.Query{context}, Counts: []int{count}}
	var out []Scored
	for cur.Depth() < cfg.MaxDepth {
		// Pick the largest segment — the user is "primarily
		// interested in the most significant parts of the data".
		target := 0
		for i, c := range cur.Counts {
			if c > cur.Counts[target] {
				target = i
			}
		}
		targetQuery := cur.Queries[target]
		bestAttr, bestChildren := "", []sdl.Query(nil)
		bestFresh, bestBalance := false, -1.0
		for _, attr := range attrs {
			children, err := seg.CutQuery(ev, targetQuery, attr, cfg.Cut)
			if err != nil {
				return nil, err
			}
			if len(children) < 2 {
				continue
			}
			counts := make([]int, len(children))
			for i, q := range children {
				n, err := ev.Count(q)
				if err != nil {
					return nil, err
				}
				counts[i] = n
			}
			bal := (&seg.Segmentation{Queries: children, Counts: counts}).Balance()
			c, constrained := targetQuery.Constraint(attr)
			fresh := !constrained || c.IsAny()
			better := false
			switch {
			case fresh && !bestFresh:
				better = true
			case fresh == bestFresh && bal > bestBalance:
				better = true
			}
			if better {
				bestAttr, bestChildren = attr, children
				bestFresh, bestBalance = fresh, bal
			}
		}
		if bestAttr == "" {
			break // no segment can be split further
		}
		next := &seg.Segmentation{CutAttrs: cur.CutAttrs}
		next.CutAttrs = mergeAttrList(cur.CutAttrs, bestAttr)
		for i, q := range cur.Queries {
			if i != target {
				next.Queries = append(next.Queries, q)
				next.Counts = append(next.Counts, cur.Counts[i])
				continue
			}
			for _, child := range bestChildren {
				n, err := ev.Count(child)
				if err != nil {
					return nil, err
				}
				if n == 0 {
					continue
				}
				next.Queries = append(next.Queries, child)
				next.Counts = append(next.Counts, n)
			}
		}
		cur = next
		out = append(out, newScored(cur, cfg.Score))
	}
	sortScored(out)
	return out, nil
}

func mergeAttrList(attrs []string, attr string) []string {
	for _, a := range attrs {
		if a == attr {
			return attrs
		}
	}
	out := make([]string, 0, len(attrs)+1)
	out = append(out, attrs...)
	out = append(out, attr)
	// Keep canonical order.
	for i := len(out) - 1; i > 0 && out[i] < out[i-1]; i-- {
		out[i], out[i-1] = out[i-1], out[i]
	}
	return out
}
