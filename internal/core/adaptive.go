package core

import (
	"context"
	"fmt"

	"charles/internal/obs"
	"charles/internal/par"
	"charles/internal/sdl"
	"charles/internal/seg"
)

// AdaptiveCuts implements the Section 5.2 extension that lifts the
// paper's "heavy restriction: all queries in a segmentation are
// based on the same attributes". It grows one segmentation greedily:
// at each step the largest segment is split, preferring an attribute
// that does not yet constrain that segment (each split should reveal
// a new aspect, maximizing per-piece breadth) and breaking ties by
// the balance of the resulting binary cut. Different pieces may
// therefore be cut on different attributes — a decision-tree-shaped
// exploration, cf. DynaCet in Section 6.2. The full search space is
// exponential; this greedy policy is the tractable rendering the
// paper hints at.
//
// The returned slice holds the segmentation after every split
// (depths 2..MaxDepth), ranked like HBCuts output.
func AdaptiveCuts(ev *seg.Evaluator, context sdl.Query, cfg Config) ([]Scored, error) {
	return AdaptiveCutsCtx(nil, ev, context, cfg, nil)
}

// AdaptiveCutsCtx is AdaptiveCuts with cooperative cancellation and
// progress reporting: ctx stops the greedy loop at the next trial
// boundary, and progress (optional) receives one PhaseTrials report
// per finished attribute trial-cut. Like HBCutsCtx, neither changes
// the returned ranking.
func AdaptiveCutsCtx(ctx context.Context, ev *seg.Evaluator, q sdl.Query, cfg Config, progress ProgressFunc) ([]Scored, error) {
	context := q // the exploration context; shadows the context package below, which is only needed in the signature
	cfg = cfg.normalize()
	prog := newProgressSink(progress)
	attrs := context.Attrs()
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: context mentions no attributes")
	}
	count, err := ev.Count(context)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("core: context %s selects no rows", context)
	}
	cur := &seg.Segmentation{Queries: []sdl.Query{context}, Counts: []int{count}}
	var out []Scored
	for cur.Depth() < cfg.MaxDepth {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Pick the largest segment — the user is "primarily
		// interested in the most significant parts of the data".
		target := 0
		for i, c := range cur.Counts {
			if c > cur.Counts[target] {
				target = i
			}
		}
		targetQuery := cur.Queries[target]
		// Trial-cut the target on every attribute across the worker
		// pool; the pick below scans the trials in attribute order,
		// so the greedy choice matches the sequential one exactly.
		// The span accumulates across loop iterations into one
		// "trials" stage; purely observational, like the HB-cuts
		// stages.
		spTrials := obs.TraceFrom(ctx).Start("trials")
		trials := make([]splitTrial, len(attrs))
		err := par.ForEachCtx(ctx, cfg.Workers, len(attrs), func(k int) error {
			defer prog.report(PhaseTrials, 0)
			children, err := seg.CutQuery(ev, targetQuery, attrs[k], cfg.Cut)
			if err != nil {
				return err
			}
			if len(children) < 2 {
				return nil
			}
			counts := make([]int, len(children))
			for i, q := range children {
				n, err := ev.Count(q)
				if err != nil {
					return err
				}
				counts[i] = n
			}
			trials[k] = splitTrial{children: children, counts: counts}
			return nil
		})
		spTrials.End()
		if err != nil {
			return nil, err
		}
		bestAttr, bestChildren := "", []sdl.Query(nil)
		bestCounts := []int(nil)
		bestFresh, bestBalance := false, -1.0
		for k, attr := range attrs {
			if trials[k].children == nil {
				continue
			}
			bal := (&seg.Segmentation{Queries: trials[k].children, Counts: trials[k].counts}).Balance()
			c, constrained := targetQuery.Constraint(attr)
			fresh := !constrained || c.IsAny()
			better := false
			switch {
			case fresh && !bestFresh:
				better = true
			case fresh == bestFresh && bal > bestBalance:
				better = true
			}
			if better {
				bestAttr, bestChildren, bestCounts = attr, trials[k].children, trials[k].counts
				bestFresh, bestBalance = fresh, bal
			}
		}
		if bestAttr == "" {
			break // no segment can be split further
		}
		next := &seg.Segmentation{CutAttrs: cur.CutAttrs}
		next.CutAttrs = mergeAttrList(cur.CutAttrs, bestAttr)
		for i, q := range cur.Queries {
			if i != target {
				next.Queries = append(next.Queries, q)
				next.Counts = append(next.Counts, cur.Counts[i])
				continue
			}
			for j, child := range bestChildren {
				if bestCounts[j] == 0 {
					continue
				}
				next.Queries = append(next.Queries, child)
				next.Counts = append(next.Counts, bestCounts[j])
			}
		}
		cur = next
		out = append(out, newScored(cur, cfg.Score))
	}
	sortScored(out)
	return out, nil
}

// splitTrial holds one attribute's trial cut of the target segment.
type splitTrial struct {
	children []sdl.Query
	counts   []int
}

func mergeAttrList(attrs []string, attr string) []string {
	for _, a := range attrs {
		if a == attr {
			return attrs
		}
	}
	out := make([]string, 0, len(attrs)+1)
	out = append(out, attrs...)
	out = append(out, attr)
	// Keep canonical order.
	for i := len(out) - 1; i > 0 && out[i] < out[i-1]; i-- {
		out[i], out[i-1] = out[i-1], out[i]
	}
	return out
}
