package core

import (
	"testing"

	"charles/internal/dataset"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func TestStreamYieldsSameSetAsEager(t *testing.T) {
	tab := dataset.Figure3(5000, 1)
	ctx := sdl.ContextAll(tab)

	eager, err := HBCuts(seg.NewEvaluator(tab), ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(seg.NewEvaluator(tab), ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy) != len(eager.Segmentations) {
		t.Fatalf("lazy yielded %d, eager %d", len(lazy), len(eager.Segmentations))
	}
	eagerKeys := map[string]bool{}
	for _, s := range eager.Segmentations {
		eagerKeys[s.Seg.Key()] = true
	}
	for _, s := range lazy {
		if !eagerKeys[s.Seg.Key()] {
			t.Fatalf("lazy produced %s not in eager output", s.Seg.Key())
		}
	}
}

func TestStreamFirstAnswersAreInitialCuts(t *testing.T) {
	tab := dataset.Figure3(5000, 1)
	ctx := sdl.ContextAll(tab)
	st, err := NewStream(seg.NewEvaluator(tab), ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The first five answers are the single-attribute cuts — the
	// "small set of queries" available immediately.
	for i := 0; i < 5; i++ {
		sc, ok, err := st.Next()
		if err != nil || !ok {
			t.Fatalf("answer %d: ok=%v err=%v", i, ok, err)
		}
		if len(sc.Seg.CutAttrs) != 1 {
			t.Fatalf("answer %d cut on %v, want single attribute", i, sc.Seg.CutAttrs)
		}
	}
	// The sixth answer is the first composition.
	sc, ok, err := st.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(sc.Seg.CutAttrs) != 2 {
		t.Fatalf("sixth answer cut on %v, want composed pair", sc.Seg.CutAttrs)
	}
}

func TestStreamExhaustion(t *testing.T) {
	tab := dataset.UniformInts(2000, 2, 100, 3)
	ctx := sdl.ContextAll(tab)
	st, err := NewStream(seg.NewEvaluator(tab), ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("independent 2-column stream yielded %d answers, want 2", n)
	}
	// Next after exhaustion keeps returning false without error.
	if _, ok, err := st.Next(); ok || err != nil {
		t.Fatalf("post-exhaustion Next: ok=%v err=%v", ok, err)
	}
	if st.Result().StopReason != StopIndependent {
		t.Fatalf("stop reason = %v", st.Result().StopReason)
	}
}

func TestStreamErrorPropagation(t *testing.T) {
	tab := dataset.Figure3(100, 1)
	if _, err := NewStream(seg.NewEvaluator(tab), sdl.Query{}, DefaultConfig()); err == nil {
		t.Fatal("empty context accepted")
	}
}
