package core

import (
	"strings"
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func figure3Env(t *testing.T, n int) (*seg.Evaluator, sdl.Query) {
	t.Helper()
	tab := dataset.Figure3(n, 1)
	return seg.NewEvaluator(tab), sdl.ContextAll(tab)
}

// TestHBCutsFigure3Shape reproduces the execution example of Figure
// 3: a query with 5 attributes whose planted dependencies make the
// procedure generate and return exactly 8 segmentations — the 5
// initial single-attribute cuts plus (att2,att3), (att4,att5) and
// (att1,att2,att3) — and then stop because the remaining pair is
// independent ("No split" at the top of the figure).
func TestHBCutsFigure3Shape(t *testing.T) {
	ev, ctx := figure3Env(t, 20000)
	res, err := HBCuts(ev, ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segmentations) != 8 {
		t.Fatalf("returned %d segmentations, want 8", len(res.Segmentations))
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Iterations)
	}
	if res.StopReason != StopIndependent {
		t.Fatalf("stop reason = %v, want independence", res.StopReason)
	}
	keys := map[string]bool{}
	for _, s := range res.Segmentations {
		keys[strings.Join(s.Seg.CutAttrs, "+")] = true
	}
	for _, want := range []string{
		"att1", "att2", "att3", "att4", "att5",
		"att2+att3", "att4+att5", "att1+att2+att3",
	} {
		if !keys[want] {
			t.Errorf("missing segmentation on %s (have %v)", want, keys)
		}
	}
	// Ranked by entropy: the deepest composition first.
	if got := strings.Join(res.Segmentations[0].Seg.CutAttrs, "+"); got != "att1+att2+att3" {
		t.Fatalf("top-ranked = %s, want att1+att2+att3", got)
	}
	for i := 1; i < len(res.Segmentations); i++ {
		if res.Segmentations[i].Score > res.Segmentations[i-1].Score+1e-12 {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
}

func TestHBCutsOutputsArePartitions(t *testing.T) {
	ev, ctx := figure3Env(t, 5000)
	res, err := HBCuts(ev, ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Segmentations {
		if err := seg.ValidatePartition(ev, ctx, s.Seg); err != nil {
			t.Fatalf("%v: %v", s.Seg.CutAttrs, err)
		}
	}
}

func TestHBCutsMaxDepthStops(t *testing.T) {
	ev, ctx := figure3Env(t, 5000)
	cfg := DefaultConfig()
	cfg.MaxDepth = 4 // compositions reach 4 pieces immediately
	res, err := HBCuts(ev, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != StopDepth {
		t.Fatalf("stop reason = %v, want depth", res.StopReason)
	}
	for _, s := range res.Segmentations {
		if s.Metrics.Depth >= 4 {
			t.Fatalf("output depth %d violates the bound", s.Metrics.Depth)
		}
	}
	// Only the 5 initial cuts survive.
	if len(res.Segmentations) != 5 {
		t.Fatalf("outputs = %d, want 5", len(res.Segmentations))
	}
}

func TestHBCutsMaxIndepOne(t *testing.T) {
	// With the threshold at 1.0 composition keeps going (every pair
	// has INDEP ≤ 1 but ties at 1 mean "stop" only at ≥): it must
	// then stop on depth or exhaustion instead.
	ev, ctx := figure3Env(t, 3000)
	cfg := DefaultConfig()
	cfg.MaxIndep = 1.000001
	res, err := HBCuts(ev, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason == StopIndependent {
		t.Fatalf("stop reason = independence despite maxIndep > 1")
	}
}

func TestHBCutsIndependentDataComposesNothing(t *testing.T) {
	tab := dataset.UniformInts(20000, 4, 1000, 7)
	ev := seg.NewEvaluator(tab)
	res, err := HBCuts(ev, sdl.ContextAll(tab), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All pairs independent: only the 4 initial cuts come back.
	if res.Iterations != 0 {
		t.Fatalf("iterations = %d on independent data", res.Iterations)
	}
	if len(res.Segmentations) != 4 {
		t.Fatalf("outputs = %d, want 4", len(res.Segmentations))
	}
	if res.StopReason != StopIndependent {
		t.Fatalf("stop reason = %v", res.StopReason)
	}
}

func TestHBCutsSkipsConstantAttrs(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", []int64{1, 2, 3, 4, 5, 6, 7, 8}),
		engine.NewIntColumn("c", []int64{7, 7, 7, 7, 7, 7, 7, 7}),
	)
	ev := seg.NewEvaluator(tab)
	res, err := HBCuts(ev, sdl.ContextAll(tab), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkippedAttrs) != 1 || res.SkippedAttrs[0] != "c" {
		t.Fatalf("skipped = %v, want [c]", res.SkippedAttrs)
	}
	if len(res.Segmentations) != 1 {
		t.Fatalf("outputs = %d, want 1", len(res.Segmentations))
	}
}

func TestHBCutsAllConstantFails(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("c", []int64{7, 7}))
	ev := seg.NewEvaluator(tab)
	if _, err := HBCuts(ev, sdl.ContextAll(tab), DefaultConfig()); err == nil {
		t.Fatal("all-constant context accepted")
	}
}

func TestHBCutsEmptyContextAttrsFails(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{1, 2}))
	ev := seg.NewEvaluator(tab)
	if _, err := HBCuts(ev, sdl.Query{}, DefaultConfig()); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestHBCutsRestrictsToContextColumns(t *testing.T) {
	// "By convention, we choose to restrict the exploration to the
	// columns mentioned by the user."
	tab := dataset.Figure3(2000, 3)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "att2", "att3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := HBCuts(ev, ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Segmentations {
		for _, a := range s.Seg.CutAttrs {
			if a != "att2" && a != "att3" {
				t.Fatalf("segmentation cut on unmentioned column %q", a)
			}
		}
	}
}

func TestHBCutsConstrainedContext(t *testing.T) {
	// Advising inside a sub-population: the context carries a real
	// predicate and all answers must stay inside it.
	tab := dataset.Figure3(5000, 4)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.MustQuery(
		sdl.RangeC("att1", engine.Int(0), engine.Int(500), true, false),
		sdl.Any("att2"), sdl.Any("att3"),
	)
	res, err := HBCuts(ev, ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Segmentations {
		if err := seg.ValidatePartition(ev, ctx, s.Seg); err != nil {
			t.Fatal(err)
		}
		for _, q := range s.Seg.Queries {
			c, ok := q.Constraint("att1")
			if !ok {
				t.Fatalf("query %s lost the context constraint", q)
			}
			if c.Kind == sdl.KindRange && c.Range.Hi.AsInt() > 500 {
				t.Fatalf("query %s escapes the context", q)
			}
		}
	}
}

func TestHBCutsIndepCacheReuse(t *testing.T) {
	ev, ctx := figure3Env(t, 5000)
	res, err := HBCuts(ev, ctx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 5 initial candidates → 10 pairs in iteration 1; subsequent
	// iterations reuse all surviving pairs. Without the cache the
	// run would evaluate sum over iterations of C(k,2) pairs.
	if res.IndepCacheHits == 0 {
		t.Fatal("INDEP cache never hit")
	}
	uncached := 0
	for k := 5; k >= 2; k-- {
		uncached += k * (k - 1) / 2
	}
	if res.IndepEvals >= uncached {
		t.Fatalf("IndepEvals = %d, want fewer than uncached %d", res.IndepEvals, uncached)
	}
}

func TestHBCutsChiSquareStopping(t *testing.T) {
	tab := dataset.UniformInts(10000, 3, 1000, 11)
	ev := seg.NewEvaluator(tab)
	cfg := DefaultConfig()
	cfg.UseChiSquare = true
	cfg.ChiAlpha = 0.01
	res, err := HBCuts(ev, sdl.ContextAll(tab), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.StopReason != StopIndependent {
		t.Fatalf("chi-squared rule composed independent data: %d iterations", res.Iterations)
	}
	// And on strongly dependent data it lets composition proceed.
	tab2 := dataset.CorrelatedPair(5000, 0.95, 2)
	ev2 := seg.NewEvaluator(tab2)
	res2, err := HBCuts(ev2, sdl.ContextAll(tab2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations == 0 {
		t.Fatal("chi-squared rule blocked composition of dependent data")
	}
}

func TestHBCutsRandomPairingAblation(t *testing.T) {
	ev, ctx := figure3Env(t, 5000)
	cfg := DefaultConfig()
	cfg.Pairing = PairRandom
	cfg.Seed = 42
	cfg.MaxIndep = 1.000001 // random pairs stop too early otherwise
	res, err := HBCuts(ev, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segmentations) < 5 {
		t.Fatalf("outputs = %d", len(res.Segmentations))
	}
	for _, s := range res.Segmentations {
		if err := seg.ValidatePartition(ev, ctx, s.Seg); err != nil {
			t.Fatal(err)
		}
	}
	// Determinism under a fixed seed.
	ev2 := seg.NewEvaluator(dataset.Figure3(5000, 1))
	res2, err := HBCuts(ev2, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segmentations) != len(res2.Segmentations) {
		t.Fatal("random pairing not reproducible under fixed seed")
	}
}

func TestHBCutsQuantileArity(t *testing.T) {
	ev, ctx := figure3Env(t, 5000)
	cfg := DefaultConfig()
	cfg.Cut.Arity = 3
	res, err := HBCuts(ev, ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Segmentations {
		if len(s.Seg.CutAttrs) == 1 && s.Metrics.Depth != 3 {
			t.Fatalf("ternary initial cut has depth %d", s.Metrics.Depth)
		}
		if err := seg.ValidatePartition(ev, ctx, s.Seg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHBCutsDeterministic(t *testing.T) {
	run := func() []string {
		tab := dataset.VOC(3000, 9)
		ev := seg.NewEvaluator(tab)
		ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
		if err != nil {
			t.Fatal(err)
		}
		res, err := HBCuts(ev, ctx, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, s := range res.Segmentations {
			keys = append(keys, s.Seg.Key())
		}
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic output count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ranking at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestScoreFuncs(t *testing.T) {
	m := seg.Metrics{Entropy: 2, Balance: 0.8, Breadth: 3, Simplicity: 2}
	if EntropyScore(m) != 2 {
		t.Fatal("EntropyScore broken")
	}
	if BalanceScore(m) != 0.8 {
		t.Fatal("BalanceScore broken")
	}
	if got := WeightedScore(1, 1, 1)(m); got != 2+3-2 {
		t.Fatalf("WeightedScore = %v", got)
	}
}

func TestStopReasonString(t *testing.T) {
	for r, want := range map[StopReason]string{
		StopExhausted:   "candidates exhausted",
		StopIndependent: "pair independent",
		StopDepth:       "depth bound reached",
		StopReason(99):  "unknown",
	} {
		if r.String() != want {
			t.Errorf("StopReason(%d) = %q", r, r.String())
		}
	}
}
