package core

import "sync"

// Progress phases. One advise reports "cuts" while seeding the
// initial per-attribute segmentations, then "pairs" while evaluating
// INDEP pair candidates; AdaptiveCuts reports "trials", one per
// attribute trial-cut. Phases within one run never interleave.
const (
	PhaseCuts   = "cuts"
	PhasePairs  = "pairs"
	PhaseTrials = "trials"
)

// Progress is one advise progress report: Done units of the named
// phase have completed. Total is the phase's known size, or 0 when
// the phase is open-ended (the number of INDEP evaluations depends
// on how composition unfolds). Done is cumulative and strictly
// monotone within a phase, so the report stream is deterministic —
// always 1, 2, ..., n per phase — even though the parallel tasks
// behind it finish in scheduler order.
type Progress struct {
	Phase string `json:"phase"`
	Done  int    `json:"done"`
	Total int    `json:"total,omitempty"`
}

// ProgressFunc receives progress reports during an advise. It may be
// called from multiple goroutines, but calls are serialized (one at
// a time) and Done values arrive in increasing order. A slow
// ProgressFunc throttles the advise — keep it O(1), e.g. a snapshot
// store the poller reads.
type ProgressFunc func(Progress)

// progressSink serializes concurrent per-task completion reports
// into the deterministic monotone stream ProgressFunc promises. A
// nil sink (no ProgressFunc supplied) is valid and free.
type progressSink struct {
	mu   sync.Mutex
	fn   ProgressFunc
	done map[string]int
}

func newProgressSink(fn ProgressFunc) *progressSink {
	if fn == nil {
		return nil
	}
	return &progressSink{fn: fn, done: make(map[string]int)}
}

// report counts one completed unit of the phase and forwards the
// cumulative tally.
func (p *progressSink) report(phase string, total int) {
	if p == nil {
		return
	}
	// fn runs under the lock: releasing it first would let a later
	// tally overtake an earlier one on its way into fn, breaking the
	// monotone-order promise.
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done[phase]++
	p.fn(Progress{Phase: phase, Done: p.done[phase], Total: total})
}
