package core

import (
	"context"
	"fmt"
	"math/rand"

	"charles/internal/obs"
	"charles/internal/par"
	"charles/internal/sdl"
	"charles/internal/seg"
)

// Result is the ranked answer list HB-cuts returns for a context —
// the content of the top panel in Figure 1.
type Result struct {
	// Context is the query whose extent was segmented.
	Context sdl.Query
	// Segmentations is the ranked output ("all intermediate results
	// ... returned by order of entropy").
	Segmentations []Scored
	// SkippedAttrs lists context attributes that could not seed an
	// initial cut (constant within the context extent).
	SkippedAttrs []string
	// Iterations counts composition steps performed.
	Iterations int
	// IndepEvals counts INDEP evaluations, including cache hits
	// avoided — the horizontal-scalability cost driver of E6.
	IndepEvals int
	// IndepCacheHits counts INDEP lookups served from the pair
	// cache (the Section 5.1 reuse optimization).
	IndepCacheHits int
	// StopReason records why composition ended.
	StopReason StopReason
	// Trace records one entry per composition step, in order — the
	// execution trace Figure 3 visualizes.
	Trace []TraceStep
}

// TraceStep documents one composition of the HB-cuts loop.
type TraceStep struct {
	// Left and Right are the cut-attribute sets of the composed
	// pair.
	Left, Right []string
	// Indep is the pair's INDEP quotient at composition time.
	Indep float64
	// Depth is the number of queries in the composed segmentation.
	Depth int
}

// StopReason explains HB-cuts termination.
type StopReason uint8

// Termination causes.
const (
	// StopExhausted: fewer than two candidates remained.
	StopExhausted StopReason = iota
	// StopIndependent: the most dependent pair reached MaxIndep (or
	// passed the chi-squared independence test).
	StopIndependent
	// StopDepth: the composed segmentation reached MaxDepth queries.
	StopDepth
)

// String names the stop reason for reports.
func (r StopReason) String() string {
	switch r {
	case StopExhausted:
		return "candidates exhausted"
	case StopIndependent:
		return "pair independent"
	case StopDepth:
		return "depth bound reached"
	default:
		return "unknown"
	}
}

// candidate wraps a segmentation with a stable id for INDEP-cache
// keying.
type candidate struct {
	id  int
	seg *seg.Segmentation
}

// hbState carries the algorithm state shared by the eager run and
// the lazy stream.
type hbState struct {
	ev      *seg.Evaluator
	cfg     Config
	context sdl.Query
	cand    []candidate
	nextID  int
	indep   map[[2]int]float64
	rng     *rand.Rand
	res     *Result
	// memo shares assembled pair sides (gathered selections +
	// packed bitmaps) across every pairwise operator call of this
	// advise, so a candidate evaluated against O(n) partners is
	// built once, not once per INDEP.
	memo *seg.PairMemo
	// ctx cancels the run: the composition loop, the pair fan-outs
	// and the cell loops underneath all re-check it at task
	// boundaries. Nil means "never cancelled".
	ctx context.Context
	// prog streams per-phase completion tallies; nil means no
	// progress reporting. Reporting never feeds back into the
	// algorithm, so ranked output is identical with and without it.
	prog *progressSink
}

// HBCuts runs the Figure 4 algorithm: seed one binary segmentation
// per context attribute, repeatedly compose the most dependent pair,
// stop on independence or depth, and return every segmentation
// encountered, ranked.
func HBCuts(ev *seg.Evaluator, context sdl.Query, cfg Config) (*Result, error) {
	return HBCutsCtx(nil, ev, context, cfg, nil)
}

// HBCutsCtx is HBCuts with cooperative cancellation and progress
// reporting. A cancelled ctx stops the run at the next task boundary
// — between initial cuts, between INDEP cell evaluations, between
// composition steps — releases every worker goroutine, and returns
// ctx.Err(). progress (optional) receives one report per completed
// initial cut (PhaseCuts, Total = context attribute count) and one
// per INDEP pair evaluation (PhasePairs, open-ended). Neither ctx
// nor progress changes ranked output: an uncancelled run returns
// byte-identical results to HBCuts.
func HBCutsCtx(ctx context.Context, ev *seg.Evaluator, q sdl.Query, cfg Config, progress ProgressFunc) (*Result, error) {
	st, err := newHBStateCtx(ctx, ev, q, cfg, progress)
	if err != nil {
		return nil, err
	}
	// Every initial candidate is an answer (Figure 3 returns the
	// single-attribute segmentations alongside the composed ones).
	for _, c := range st.cand {
		st.res.Segmentations = append(st.res.Segmentations, newScored(c.seg, st.cfg.Score))
	}
	for {
		composed, _, err := st.step()
		if err != nil {
			return nil, err
		}
		if composed == nil {
			break
		}
		st.res.Segmentations = append(st.res.Segmentations, newScored(composed, st.cfg.Score))
	}
	sortScored(st.res.Segmentations)
	return st.res, nil
}

func newHBState(ev *seg.Evaluator, context sdl.Query, cfg Config) (*hbState, error) {
	return newHBStateCtx(nil, ev, context, cfg, nil)
}

func newHBStateCtx(ctx context.Context, ev *seg.Evaluator, context sdl.Query, cfg Config, progress ProgressFunc) (*hbState, error) {
	cfg = cfg.normalize()
	if len(context.Attrs()) == 0 {
		return nil, fmt.Errorf("core: context mentions no attributes")
	}
	st := &hbState{
		ev:      ev,
		cfg:     cfg,
		context: context,
		indep:   make(map[[2]int]float64),
		res:     &Result{Context: context},
		memo:    seg.NewPairMemo(),
		ctx:     ctx,
		prog:    newProgressSink(progress),
	}
	if cfg.Pairing == PairRandom {
		st.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	// Figure 4 lines 3-5: one binary cut per context attribute. By
	// convention exploration is restricted to the columns the user
	// mentioned (Section 2). The cuts are independent, so they fan
	// out across the worker pool; merging in attribute order keeps
	// candidate ids — and therefore the whole run — deterministic.
	attrs := context.Attrs()
	// The stage trace (obs.TraceFrom; nil and therefore free unless
	// the caller planted one) times the phases only — it observes the
	// run, never steers it, so traced and untraced output is
	// byte-identical.
	spCuts := obs.TraceFrom(ctx).Start("initial_cuts")
	defer spCuts.End()
	// Prime the context selection before fanning out: every initial
	// cut starts from it, and on a cold cache W workers would all
	// miss the same key at once and each pay the full-table scan.
	if _, err := ev.Select(context); err != nil {
		return nil, err
	}
	type initial struct {
		seg *seg.Segmentation
		ok  bool
	}
	cuts := make([]initial, len(attrs))
	err := par.ForEachCtx(ctx, cfg.Workers, len(attrs), func(i int) error {
		s, ok, err := seg.InitialCut(ev, context, attrs[i], cfg.Cut)
		if err != nil {
			return err
		}
		cuts[i] = initial{seg: s, ok: ok}
		st.prog.report(PhaseCuts, len(attrs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, attr := range attrs {
		if !cuts[i].ok {
			st.res.SkippedAttrs = append(st.res.SkippedAttrs, attr)
			continue
		}
		st.cand = append(st.cand, candidate{id: st.nextID, seg: cuts[i].seg})
		st.nextID++
	}
	if len(st.cand) == 0 {
		return nil, fmt.Errorf("core: no context attribute of %s can be cut", context)
	}
	return st, nil
}

// step performs one iteration of the Figure 4 loop. It returns the
// newly composed segmentation, or nil when the algorithm stopped
// (StopReason recorded on the result). The boolean reports whether
// composition may continue.
func (st *hbState) step() (*seg.Segmentation, bool, error) {
	if st.ctx != nil && st.ctx.Err() != nil {
		return nil, false, st.ctx.Err()
	}
	if len(st.cand) < 2 {
		st.res.StopReason = StopExhausted
		return nil, false, nil
	}
	tr := obs.TraceFrom(st.ctx)
	spPairs := tr.Start("indep_pairs")
	i, j, ind, err := st.pickPair()
	spPairs.End()
	if err != nil {
		return nil, false, err
	}
	s1, s2 := st.cand[i], st.cand[j]
	// Check independence before paying for the composition when the
	// fixed threshold already fails (the chi-squared rule needs the
	// same cell counts INDEP used, so it is also checked here).
	stop := false
	if st.cfg.UseChiSquare {
		spChi := tr.Start("indep_pairs")
		indep, err := seg.ChiSquareIndependentOpt(st.ev, s1.seg, s2.seg, st.cfg.ChiAlpha, st.pairOpts(st.cfg.Workers))
		spChi.End()
		if err != nil {
			return nil, false, err
		}
		stop = indep
	} else {
		stop = ind >= st.cfg.MaxIndep
	}
	if stop {
		st.res.StopReason = StopIndependent
		return nil, false, nil
	}
	spCompose := tr.Start("compose")
	composed, err := seg.Compose(st.ev, s1.seg, s2.seg, st.cfg.Cut)
	spCompose.End()
	if err != nil {
		return nil, false, err
	}
	if composed.Depth() >= st.cfg.MaxDepth {
		st.res.StopReason = StopDepth
		return nil, false, nil
	}
	st.res.Iterations++
	st.res.Trace = append(st.res.Trace, TraceStep{
		Left:  s1.seg.CutAttrs,
		Right: s2.seg.CutAttrs,
		Indep: ind,
		Depth: composed.Depth(),
	})
	// Figure 4 lines 18-20: replace the pair with the composition.
	st.removePair(i, j)
	st.cand = append(st.cand, candidate{id: st.nextID, seg: composed})
	st.nextID++
	return composed, true, nil
}

// pickPair returns the candidate index pair to compose along with
// its INDEP value. Under PairMostDependent it is the argmin of
// Figure 4 line 11, with INDEP values cached across iterations
// (Section 5.1: "the calculations of SDL products and entropy can be
// reused from one iteration to the next").
func (st *hbState) pickPair() (int, int, float64, error) {
	if st.cfg.Pairing == PairRandom {
		i := st.rng.Intn(len(st.cand))
		j := st.rng.Intn(len(st.cand) - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		ind, err := st.pairIndep(st.cand[i], st.cand[j])
		return i, j, ind, err
	}
	// Evaluate the INDEP quotients the pair cache is missing across
	// the worker pool, then merge and argmin-scan sequentially in
	// (i, j) order — the same winner a sequential pass picks, at a
	// fraction of the wall-clock.
	type missing struct {
		i, j int
		key  [2]int
		val  float64
	}
	n := len(st.cand)
	var todo []missing
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			key := pairKey(st.cand[i], st.cand[j])
			if _, ok := st.indep[key]; ok {
				st.res.IndepCacheHits++
				continue
			}
			todo = append(todo, missing{i: i, j: j, key: key})
		}
	}
	// Two parallelism levels are available: across missing pairs and
	// across each pair's contingency cells. Splitting the pool both
	// ways would oversubscribe, so the pool is divided: with a warm
	// pair cache every step leaves n-1 pairs missing (the freshly
	// composed candidate against each survivor), so few missing
	// pairs with many workers hand the surplus to the cell loops.
	inner := 1
	if len(todo) > 0 && st.cfg.Workers/len(todo) > 1 {
		inner = st.cfg.Workers / len(todo)
	}
	err := par.ForEachCtx(st.ctx, st.cfg.Workers, len(todo), func(k int) error {
		v, err := seg.IndepOpt(st.ev, st.cand[todo[k].i].seg, st.cand[todo[k].j].seg, st.pairOpts(inner))
		if err != nil {
			return err
		}
		todo[k].val = v
		st.prog.report(PhasePairs, 0)
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for _, m := range todo {
		st.indep[m.key] = m.val
		st.res.IndepEvals++
	}
	bestI, bestJ, bestInd := -1, -1, 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ind := st.indep[pairKey(st.cand[i], st.cand[j])]
			if bestI < 0 || ind < bestInd {
				bestI, bestJ, bestInd = i, j, ind
			}
		}
	}
	return bestI, bestJ, bestInd, nil
}

// pairOpts builds the options one pairwise operator call runs
// under: the configured selection representation, the advise-wide
// pair-side memo, with the cell loop bounded at workers goroutines.
func (st *hbState) pairOpts(workers int) seg.PairOptions {
	return seg.PairOptions{Workers: workers, Rep: st.cfg.Selection, Memo: st.memo, Ctx: st.ctx}
}

func pairKey(a, b candidate) [2]int {
	key := [2]int{a.id, b.id}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	return key
}

func (st *hbState) pairIndep(a, b candidate) (float64, error) {
	key := pairKey(a, b)
	if v, ok := st.indep[key]; ok {
		st.res.IndepCacheHits++
		return v, nil
	}
	v, err := seg.IndepOpt(st.ev, a.seg, b.seg, st.pairOpts(st.cfg.Workers))
	if err != nil {
		return 0, err
	}
	st.res.IndepEvals++
	st.indep[key] = v
	st.prog.report(PhasePairs, 0)
	return v, nil
}

func (st *hbState) removePair(i, j int) {
	if i > j {
		i, j = j, i
	}
	st.cand = append(st.cand[:j], st.cand[j+1:]...)
	st.cand = append(st.cand[:i], st.cand[i+1:]...)
}
